"""Persistent shared-memory arena: slab recycling, attach caching, the
zero-copy landing path, crash cleanup, and the stamp-batching fast path.

The arena's correctness argument (DESIGN §11): a slab is reused only
after every slice cut from it has been acknowledged, and receivers ack
only *after* their copy-out — so a recycled slab can never be
overwritten while a receiver still reads it. These tests pin that
protocol at the unit level (ShmArena alone), at the router level
(descriptors, ``out=`` landing, odd dtypes), and end-to-end (real
process-backed runs, including a rank that dies without teardown).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.cluster import run_spmd
from repro.cluster.arena import (
    MIN_SLAB_BYTES,
    SHM_PREFIX,
    AttachCache,
    ShmArena,
    arena_enabled,
    slab_class,
)
from repro.cluster.process_backend import (
    STAMP_BATCH_S,
    ProcessRouter,
    _Fabric,
)
from repro.errors import SpmdError
from repro.membuf import ARENA_KEYS, copy_delta, copy_stats

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="POSIX shared memory required"
)


def _arena_delta(before):
    delta = copy_delta(before, copy_stats().snapshot())
    return {k: delta[k] for k in ARENA_KEYS}


def _shm_entries() -> list[str]:
    return sorted(
        n for n in os.listdir("/dev/shm") if n.startswith(SHM_PREFIX + "-")
    )


# ---------------------------------------------------------------------------
# Size classes
# ---------------------------------------------------------------------------


class TestSlabClass:
    def test_minimum_is_one_page_class(self):
        assert slab_class(0) == MIN_SLAB_BYTES
        assert slab_class(1) == MIN_SLAB_BYTES
        assert slab_class(MIN_SLAB_BYTES) == MIN_SLAB_BYTES

    def test_power_of_two_rounding(self):
        assert slab_class(MIN_SLAB_BYTES + 1) == 2 * MIN_SLAB_BYTES
        assert slab_class(3 * MIN_SLAB_BYTES) == 4 * MIN_SLAB_BYTES
        for n in (5000, 70000, 1 << 20):
            cls = slab_class(n)
            assert cls >= n and cls & (cls - 1) == 0

    def test_env_flag_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM_ARENA", raising=False)
        assert arena_enabled()
        monkeypatch.setenv("REPRO_SHM_ARENA", "0")
        assert not arena_enabled()


# ---------------------------------------------------------------------------
# ShmArena protocol, in isolation
# ---------------------------------------------------------------------------


class TestShmArena:
    def test_lease_ack_recycle_reuses_the_same_segment(self):
        arena = ShmArena()
        try:
            a = arena.lease(1000)
            name = a.name
            arena.pin(name)
            arena.ack(name)  # last ack: back to the free list
            b = arena.lease(2000)  # same 4 KiB class
            assert b.name == name and arena.slab_count() == 1
        finally:
            assert arena.unlink_all() == []

    def test_distinct_classes_get_distinct_slabs(self):
        arena = ShmArena()
        try:
            small = arena.lease(100)
            big = arena.lease(MIN_SLAB_BYTES + 1)
            assert small.name != big.name
            assert small.nbytes == MIN_SLAB_BYTES
            assert big.nbytes == 2 * MIN_SLAB_BYTES
        finally:
            arena.unlink_all()

    def test_slab_not_reused_while_acks_outstanding(self):
        arena = ShmArena()
        try:
            a = arena.lease(64)
            arena.pin(a.name)
            arena.pin(a.name)
            arena.ack(a.name)  # one of two receivers landed
            b = arena.lease(64)
            assert b.name != a.name, "slab recycled with a slice in flight"
            arena.ack(a.name)  # second receiver lands
            c = arena.lease(64)
            assert c.name == a.name
        finally:
            arena.unlink_all()

    def test_one_shot_mode_unlinks_on_full_ack(self):
        arena = ShmArena()
        slab = arena.lease(64, recycle=False)
        arena.pin(slab.name)
        assert os.path.exists(f"/dev/shm/{slab.name}")
        arena.ack(slab.name)
        assert not os.path.exists(f"/dev/shm/{slab.name}")
        assert arena.slab_count() == 0 and arena.unlink_all() == []

    def test_locate_resolves_interior_addresses(self):
        arena = ShmArena()
        try:
            slabs = [arena.lease(MIN_SLAB_BYTES << i) for i in range(4)]
            for slab in slabs:
                assert arena.locate(slab.base, 1) is slab
                assert arena.locate(slab.base + slab.nbytes - 1, 1) is slab
                assert arena.locate(slab.base + 10, slab.nbytes) is None
            assert arena.locate(0, 1) is None
        finally:
            arena.unlink_all()

    def test_lease_meters_hits_and_misses(self):
        before = copy_stats().snapshot()
        arena = ShmArena()
        try:
            a = arena.lease(64)
            arena.pin(a.name)
            arena.ack(a.name)
            arena.lease(64)
            delta = _arena_delta(before)
            assert delta["arena_misses"] == 1 and delta["arena_hits"] == 1
        finally:
            arena.unlink_all()

    def test_unlink_all_reaps_free_and_leased_slabs(self):
        arena = ShmArena()
        a = arena.lease(64)
        arena.pin(a.name)
        arena.ack(a.name)  # free-listed
        b = arena.lease(MIN_SLAB_BYTES * 3)  # still leased
        assert _shm_entries()  # both exist on /dev/shm
        assert arena.unlink_all() == []
        for name in (a.name, b.name):
            assert not os.path.exists(f"/dev/shm/{name}")

    def test_attach_cache_attaches_once(self):
        arena = ShmArena()
        cache = AttachCache()
        try:
            slab = arena.lease(64)
            before = copy_stats().snapshot()
            first = cache.get(slab.name)
            again = cache.get(slab.name)
            assert first is again
            assert _arena_delta(before)["attach_count"] == 1
        finally:
            cache.close_all()
            arena.unlink_all()


# ---------------------------------------------------------------------------
# Router-level: descriptors and the out= landing path
# ---------------------------------------------------------------------------


@pytest.fixture
def router():
    r = ProcessRouter(_Fabric(2, timeout=5.0), rank=0)
    yield r
    # Idempotent backstop for failure paths; passing tests call
    # teardown themselves because the conftest shm leak check runs
    # before fixture finalizers.
    r.teardown(grace_s=0.1)


class TestLandingPath:
    def test_out_landing_copies_bytes_and_meters(self, router):
        packed = router.alloc_packed(np.int64, 16)
        packed[:] = np.arange(16)
        _, desc = router._outbound(("alltoallv", packed[4:12]))
        before = copy_stats().snapshot()
        out = np.empty(8, dtype=np.int64)
        got = router._materialize(desc, out=out)
        assert got is out
        assert out.tolist() == list(range(4, 12))
        delta = _arena_delta(before)
        assert delta["bytes_landed_zero_extra_copy"] == 8 * 8
        assert router.teardown(grace_s=0.1) == []

    def test_zero_length_slice_through_out_landing(self, router):
        packed = router.alloc_packed(np.int64, 8)
        _, desc = router._outbound(("alltoallv", packed[3:3]))
        assert desc.count == 0
        out = np.empty(0, dtype=np.int64)
        assert router._materialize(desc, out=out) is out
        # And without out=: an empty private array, no pool traffic.
        _, desc2 = router._outbound(("alltoallv", packed[5:5]))
        landed = router._materialize(desc2)
        assert isinstance(landed, np.ndarray) and landed.size == 0
        assert router.teardown(grace_s=0.1) == []

    def test_structured_dtype_through_out_landing(self, router):
        dtype = np.dtype([("key", "<u8"), ("pad", "V24")])
        packed = router.alloc_packed(dtype, 6)
        packed["key"] = np.arange(6) + 7
        _, desc = router._outbound(("alltoallv", packed[1:5]))
        out = np.zeros(4, dtype=dtype)
        router._materialize(desc, out=out)
        assert out["key"].tolist() == [8, 9, 10, 11]
        assert router.teardown(grace_s=0.1) == []

    def test_own_slab_ack_is_synchronous(self, router):
        packed = router.alloc_packed(np.int64, 4)
        packed[:] = 1
        _, desc = router._outbound(("alltoallv", packed))
        router._materialize(desc)
        assert router._arena.all_acked()
        # The slab is back on the free list: the next same-class alloc
        # reuses it without creating a segment.
        before = copy_stats().snapshot()
        router.alloc_packed(np.int64, 4)
        delta = _arena_delta(before)
        assert delta["arena_hits"] == 1 and delta["arena_misses"] == 0
        assert router.teardown(grace_s=0.1) == []

    def test_foreign_arrays_pass_through_outbound(self, router):
        plain = np.arange(4, dtype=np.int64)
        assert router._slice_of(plain) is None
        payload = ("alltoallv", plain)
        assert router._outbound(payload) is payload


# ---------------------------------------------------------------------------
# Stamp batching (watchdog fast path)
# ---------------------------------------------------------------------------


class TestStampBatching:
    def test_live_stamps_are_batched(self, router):
        start = router.stamp_writes
        for _ in range(500):
            router.touch(0)
        # 500 touches inside one batch window collapse to ~1 write.
        assert router.stamp_writes - start <= 3

    def test_explicit_stamps_always_write(self, router):
        start = router.stamp_writes
        base = time.monotonic()
        for i in range(10):
            router.touch(0, stamp=base + i)
        assert router.stamp_writes - start == 10

    def test_detection_latency_unchanged(self, router):
        """Batching may only *skip* a write when a fresh one exists, so
        the visible stamp is never more than STAMP_BATCH_S behind the
        rank's true last activity — silence onset, which is what the
        watchdog times, is unchanged."""
        router.touch(0)
        assert time.monotonic() - router.activity()[0] < STAMP_BATCH_S
        time.sleep(2 * STAMP_BATCH_S)
        stale = router.activity()[0]
        router.touch(0)  # past the window: writes immediately
        assert router.activity()[0] > stale


# ---------------------------------------------------------------------------
# End-to-end over the process transport
# ---------------------------------------------------------------------------


def _alltoallv_rounds(comm, rounds):
    """``rounds`` collectives cycling through three distinct slab size
    classes; verifies every received slice."""
    for r in range(rounds):
        n = 256 << (r % 3)
        parts = [
            np.full(n, 1000 * comm.rank + r, dtype=np.int64)
            for _ in range(comm.size)
        ]
        got = comm.alltoallv(parts)
        for source, arr in enumerate(got):
            assert len(arr) == n
            assert arr[0] == 1000 * source + r and arr[-1] == 1000 * source + r
    return True


class TestEndToEnd:
    def test_slabs_recycle_across_collectives(self):
        """≥3 collectives of differing shapes: segment creates stay
        bounded by (ranks x size classes) while every later collective
        is served from the free lists."""
        rounds, size = 12, 2
        before = copy_stats().snapshot()
        res = run_spmd(size, _alltoallv_rounds, rounds, backend="process")
        assert res.returns == [True] * size
        delta = _arena_delta(before)
        leases = delta["arena_hits"] + delta["arena_misses"]
        assert leases == rounds * size
        # 3 size classes per rank, plus slack for acks still in flight
        # when a class came around again.
        assert delta["arena_misses"] <= 2 * 3 * size
        assert delta["arena_hits"] >= rounds * size - 2 * 3 * size
        # Attach caching: far fewer mappings than landed slices.
        assert delta["attach_count"] <= delta["arena_misses"] * (size - 1)
        assert delta["bytes_landed_zero_extra_copy"] > 0
        assert _shm_entries() == []

    def test_escape_hatch_restores_one_shot_lifecycle(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_ARENA", "0")
        rounds, size = 6, 2
        before = copy_stats().snapshot()
        res = run_spmd(size, _alltoallv_rounds, rounds, backend="process")
        assert res.returns == [True] * size
        delta = _arena_delta(before)
        # Every collective creates (and later unlinks) its own segment,
        # and every landed remote slice attaches: the PR 6 lifecycle.
        assert delta["arena_hits"] == 0
        assert delta["arena_misses"] == rounds * size
        assert delta["attach_count"] == rounds * size * (size - 1)
        assert _shm_entries() == []

    def test_legacy_copies_bypasses_packed_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEGACY_COPIES", "1")
        before = copy_stats().snapshot()
        res = run_spmd(2, _alltoallv_rounds, 3, backend="process")
        assert res.returns == [True, True]
        delta = _arena_delta(before)
        assert all(delta[k] == 0 for k in ARENA_KEYS)
        assert _shm_entries() == []

    def test_crashed_rank_slabs_swept_by_parent(self):
        """A rank dying without teardown (``os._exit``) leaks its slabs
        to the parent's pid-keyed ``/dev/shm`` sweep."""

        def program(comm):
            parts = [
                np.arange(512, dtype=np.int64) for _ in range(comm.size)
            ]
            comm.alltoallv(parts)
            if comm.rank == 1:
                os._exit(23)  # no teardown, no report
            return True

        with pytest.raises(SpmdError, match="died without reporting"):
            run_spmd(2, program, backend="process", timeout=10)
        assert _shm_entries() == []
