"""Baseline I/O passes and the one-call API."""

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.errors import ConfigError
from repro.oocs.api import ALGORITHMS, run_baseline_io, sort_out_of_core
from repro.records.format import RecordFormat
from repro.records.generators import generate

FMT = RecordFormat("u8", 64)


class TestBaselineIo:
    @pytest.mark.parametrize("passes", [1, 3, 4])
    def test_io_volume_scales_with_passes(self, passes):
        cluster = ClusterConfig(p=4, mem_per_proc=2**10)
        recs = generate("uniform", FMT, 512 * 16, seed=1)
        res = run_baseline_io(recs, cluster, FMT, buffer_records=512, passes=passes)
        nbytes = len(recs) * FMT.record_size
        assert res.io["bytes_read"] == passes * nbytes
        assert res.io["bytes_written"] == passes * nbytes
        assert res.passes == passes

    def test_no_network_traffic(self):
        cluster = ClusterConfig(p=4, mem_per_proc=2**10)
        recs = generate("uniform", FMT, 512 * 16, seed=1)
        res = run_baseline_io(recs, cluster, FMT, buffer_records=512)
        assert res.comm_total["network_bytes"] == 0

    def test_output_equals_input(self):
        cluster = ClusterConfig(p=2, mem_per_proc=2**10)
        recs = generate("uniform", FMT, 128 * 4, seed=2)
        res = run_baseline_io(recs, cluster, FMT, buffer_records=128, passes=2)
        assert np.array_equal(res.output.to_records(), recs)

    def test_zero_passes_rejected(self):
        cluster = ClusterConfig(p=2, mem_per_proc=2**10)
        recs = generate("uniform", FMT, 128 * 4, seed=2)
        with pytest.raises(ConfigError):
            run_baseline_io(recs, cluster, FMT, buffer_records=128, passes=0)

    def test_trace_shape(self):
        cluster = ClusterConfig(p=2, mem_per_proc=2**10)
        recs = generate("uniform", FMT, 128 * 4, seed=2)
        res = run_baseline_io(recs, cluster, FMT, buffer_records=128, passes=3)
        assert len(res.trace.passes) == 3
        for pt in res.trace.passes:
            assert [st.kind for st in pt.stages] == ["read", "write"]
            assert len(pt.rounds) == 2  # s/P = 4/2


class TestApi:
    def test_algorithm_registry(self):
        assert set(ALGORITHMS) == {"threaded", "subblock", "m", "hybrid"}

    def test_unknown_algorithm(self):
        cluster = ClusterConfig(p=2, mem_per_proc=2**10)
        recs = generate("uniform", FMT, 128, seed=1)
        with pytest.raises(ConfigError, match="unknown algorithm"):
            sort_out_of_core("quicksort", recs, cluster, FMT, buffer_records=64)

    def test_verify_false_skips_checks(self):
        cluster = ClusterConfig(p=2, mem_per_proc=2**10)
        recs = generate("uniform", FMT, 128 * 4, seed=1)
        res = sort_out_of_core(
            "threaded", recs, cluster, FMT, buffer_records=128, verify=False
        )
        assert res.output_records() is not None

    def test_explicit_workdir(self, tmp_path):
        cluster = ClusterConfig(p=2, mem_per_proc=2**10)
        recs = generate("uniform", FMT, 128 * 4, seed=1)
        res = sort_out_of_core(
            "threaded", recs, cluster, FMT, buffer_records=128,
            workdir=tmp_path / "work",
        )
        assert (tmp_path / "work" / "disk000").exists()
        assert res.workspace.workdir == tmp_path / "work"

    def test_collect_trace_false(self):
        cluster = ClusterConfig(p=2, mem_per_proc=2**10)
        recs = generate("uniform", FMT, 128 * 4, seed=1)
        res = sort_out_of_core(
            "threaded", recs, cluster, FMT, buffer_records=128,
            collect_trace=False,
        )
        assert res.trace is None

    def test_all_algorithms_one_config_each(self):
        """Smoke: every registered algorithm through the same API."""
        cluster = ClusterConfig(p=4, mem_per_proc=2**10)
        cases = {
            "threaded": (generate("uniform", FMT, 512 * 16, seed=1), 512),
            "subblock": (generate("uniform", FMT, 256 * 16, seed=1), 256),
            "m": (generate("uniform", FMT, 4 * 256 * 16, seed=1), 256),
            "hybrid": (generate("uniform", FMT, 4 * 256 * 16, seed=1), 256),
        }
        for algorithm, (recs, buf) in cases.items():
            res = sort_out_of_core(
                algorithm, recs, cluster, FMT, buffer_records=buf
            )
            assert res.algorithm in (algorithm, "m-columnsort", "threaded",
                                     "subblock", "hybrid")
