"""Problem-size bounds: exactness, the paper's worked numbers, and
agreement with the algorithms' actual eligibility checks."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bounds.analysis import (
    crossover_memory,
    eligible_problem_sizes,
    improvement_factor,
    log2_improvement_summary,
    m_beats_subblock,
    max_n_for_buffer,
    terabyte_config,
)
from repro.bounds.restrictions import (
    _icbrt,
    max_n_hybrid,
    max_n_m_columnsort,
    max_n_subblock,
    max_n_threaded,
    max_pow2_n,
    restriction_table,
)
from repro.errors import ConfigError


class TestExactness:
    @given(st.integers(min_value=1, max_value=10**9))
    def test_icbrt_is_floor_cube_root(self, n):
        x = _icbrt(n)
        assert x**3 <= n < (x + 1) ** 3

    @given(st.integers(min_value=200, max_value=1000))
    def test_icbrt_huge_inputs(self, e):
        x = _icbrt(1 << e)
        assert x**3 <= (1 << e) < (x + 1) ** 3

    @given(st.integers(min_value=4, max_value=2**20))
    def test_threaded_bound_tight(self, mem):
        """The bound is exactly the largest N with some legal (r, s):
        N² ≤ (M/P)³/2 ⟺ restriction (1)."""
        n = max_n_threaded(mem)
        assert 2 * n * n <= mem**3
        assert 2 * (n + 1) * (n + 1) > mem**3

    @given(st.integers(min_value=4, max_value=2**20))
    def test_subblock_bound_tight(self, mem):
        n = max_n_subblock(mem)
        assert 16 * n**3 <= mem**5
        assert 16 * (n + 1) ** 3 > mem**5

    def test_max_pow2(self):
        assert max_pow2_n(8192) == 8192
        assert max_pow2_n(8191) == 4096
        assert max_pow2_n(1) == 1


class TestPaperNumbers:
    def test_terabyte_example(self):
        """§1: P=16, M/P = 2^19 records, 64-byte records → 1 TB."""
        cfg = terabyte_config()
        assert cfg.max_records == 2**34
        assert cfg.max_bytes == 2**40

    def test_more_than_double_at_2_12(self):
        """§1: for M/P ≥ 2^12 subblock more than doubles the max size."""
        assert improvement_factor(2**12) > 2
        assert improvement_factor(2**11) < 2.1  # near the threshold

    def test_improvement_grows_as_sixth_root(self):
        f12, f18 = improvement_factor(2**12), improvement_factor(2**18)
        assert f18 / f12 == pytest.approx(2.0, rel=0.01)  # (2^6)^(1/6)

    def test_crossover_p8_is_2_35(self):
        """§5: with P = 8, M-columnsort wins while total memory holds
        fewer than 2^35 records."""
        assert crossover_memory(8) == 2**35

    @given(st.sampled_from([2, 4, 8, 16]), st.integers(min_value=14, max_value=60))
    def test_crossover_closed_form_matches_bounds(self, p, log_m):
        """M^(3/2)/√2 > (M/P)^(5/3)/4^(2/3) ⟺ M < 32·P^10, checked
        against the integer bounds themselves (away from the exact
        threshold, where integer flooring may disagree by one)."""
        m = 1 << log_m
        threshold = crossover_memory(p)
        if m * 2 < threshold:
            assert m_beats_subblock(m, p)
        elif m > threshold * 2:
            assert not m_beats_subblock(m, p)

    def test_restriction_table_ordering(self):
        row = restriction_table(2**19, 16)
        assert row["threaded"] < row["subblock"] < row["m"] < row["hybrid"]

    def test_m_scales_with_total_memory(self):
        """§4: adding processors at fixed M/P grows M-columnsort's bound
        superlinearly — unlike threaded/subblock, which do not move."""
        r8 = restriction_table(2**19, 8)
        r16 = restriction_table(2**19, 16)
        assert r16["threaded"] == r8["threaded"]
        assert r16["subblock"] == r8["subblock"]
        assert r16["m"] > 2 * r8["m"]  # superlinear in P


class TestEligibility:
    def test_subblock_sizes_are_factor_4_apart(self):
        sizes = eligible_problem_sizes("subblock", 2**19, 16, 2**24, 2**30)
        ratios = [b // a for a, b in zip(sizes, sizes[1:])]
        assert all(r == 4 for r in ratios)

    def test_m_covers_every_power_of_2(self):
        sizes = eligible_problem_sizes("m", 2**19, 16, 2**26, 2**29)
        assert sizes == [2**26, 2**27, 2**28, 2**29]

    def test_threaded_caps_out(self):
        sizes = eligible_problem_sizes("threaded", 2**18, 16, 2**20, 2**40)
        assert sizes and max(sizes) == 2**18 * 2**8  # r · max_s_basic(r)

    def test_eligibility_agrees_with_derive_shape(self):
        """The bounds module and the algorithms must agree on what is
        runnable (cross-validation of two independent implementations)."""
        from repro.cluster.config import ClusterConfig
        from repro.oocs.base import OocJob
        from repro.oocs import mcolumnsort, subblock, threaded
        from repro.records.format import RecordFormat

        fmt = RecordFormat("u8", 64)
        p, buf = 4, 256
        cluster = ClusterConfig(p=p, mem_per_proc=buf)
        shapes = {
            "threaded": threaded.derive_shape,
            "subblock": subblock.derive_shape,
            "m": mcolumnsort.derive_shape,
        }
        for algorithm, derive in shapes.items():
            expected = set(
                eligible_problem_sizes(algorithm, buf, p, 2**10, 2**22)
            )
            for exp in range(10, 23):
                n = 1 << exp
                job = OocJob(cluster=cluster, fmt=fmt, n=n, buffer_records=buf)
                try:
                    derive(job)
                    runnable = True
                except Exception:
                    runnable = False
                assert runnable == (n in expected), (algorithm, n)

    def test_max_n_for_buffer(self):
        assert max_n_for_buffer("threaded", 512, 4) == 512 * 16
        with pytest.raises(ConfigError):
            max_n_for_buffer("threaded", 2, 4)

    def test_summary_rows(self):
        rows = log2_improvement_summary(range(12, 16, 2), 8)
        assert len(rows) == 2
        assert rows[0]["improvement"] > 2
        assert rows[0]["log2_m"] > rows[0]["log2_threaded"]


class TestValidationErrors:
    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigError):
            max_n_threaded(0)
        with pytest.raises(ConfigError):
            crossover_memory(0)
        with pytest.raises(ConfigError):
            improvement_factor(-1)

    def test_m_beats_subblock_requires_divisibility(self):
        with pytest.raises(ConfigError):
            m_beats_subblock(100, 8)

    def test_eligible_requires_powers(self):
        with pytest.raises(ConfigError):
            eligible_problem_sizes("m", 100, 4, 1, 10)
        with pytest.raises(ConfigError):
            eligible_problem_sizes("nope", 128, 4, 1, 10)
