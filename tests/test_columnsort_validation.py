"""The height restrictions and their exact boundaries."""

import pytest

from repro.columnsort.validation import (
    basic_height_ok,
    max_s_basic,
    max_s_subblock,
    subblock_height_ok,
    validate_basic,
    validate_subblock,
)
from repro.errors import DimensionError


class TestBasicRestriction:
    def test_boundary_exact(self):
        # r = 2s² is legal; one less is not.
        assert basic_height_ok(512, 16)
        assert not basic_height_ok(511, 16)

    def test_validate_accepts_legal(self):
        validate_basic(512, 16)
        validate_basic(18, 3)  # non-power-of-2 is fine in core

    def test_validate_rejects_height(self):
        with pytest.raises(DimensionError, match="height restriction"):
            validate_basic(256, 16)

    def test_validate_rejects_non_divisor(self):
        with pytest.raises(DimensionError, match="divide"):
            validate_basic(513, 16)

    def test_validate_rejects_nonpositive(self):
        with pytest.raises(DimensionError):
            validate_basic(0, 1)
        with pytest.raises(DimensionError):
            validate_basic(8, -2)

    def test_powers_of_two_flag(self):
        validate_basic(512, 16, powers_of_two=True)
        with pytest.raises(DimensionError, match="power-of-2"):
            validate_basic(18, 3, powers_of_two=True)


class TestSubblockRestriction:
    def test_boundary_exact(self):
        # r = 4·s^(3/2): s=16 → r=256 exactly legal.
        assert subblock_height_ok(256, 16)
        assert not subblock_height_ok(255, 16)

    def test_relaxation_factor(self):
        """§1: the relaxation is a factor √s/2 — at s=16 basic needs
        512 but subblock needs only 256."""
        assert not basic_height_ok(256, 16)
        assert subblock_height_ok(256, 16)

    def test_validate_accepts_legal(self):
        validate_subblock(256, 16)
        validate_subblock(2048, 64)

    def test_validate_rejects_non_power_of_4(self):
        with pytest.raises(DimensionError, match="power of 4"):
            validate_subblock(2048, 32)

    def test_validate_rejects_height(self):
        with pytest.raises(DimensionError, match="relaxed height"):
            validate_subblock(128, 16)

    def test_validate_rejects_non_power_of_2_r(self):
        with pytest.raises(DimensionError):
            validate_subblock(257, 16)

    def test_non_power_of_2_r_allowed_when_relaxed(self):
        # In-core use permits any r with s | r and the height bound.
        validate_subblock(48 * 16, 16, powers_of_two=False)


class TestMaxS:
    @pytest.mark.parametrize("a", range(1, 24))
    def test_max_s_basic_is_maximal(self, a):
        r = 1 << a
        s = max_s_basic(r)
        assert basic_height_ok(r, s)
        assert not basic_height_ok(r, s * 2)

    @pytest.mark.parametrize("a", range(2, 24))
    def test_max_s_subblock_is_maximal(self, a):
        r = 1 << a
        s = max_s_subblock(r)
        assert subblock_height_ok(r, s)
        assert not subblock_height_ok(r, s * 4)  # next power of 4

    def test_subblock_reaches_further(self):
        """For large r the subblock max column count (and hence max N)
        beats basic columnsort's."""
        r = 1 << 20
        assert max_s_subblock(r) > max_s_basic(r)

    def test_known_values(self):
        assert max_s_basic(512) == 16
        assert max_s_subblock(256) == 16
        assert max_s_subblock(2048) == 64
