"""Degraded-mode execution: a disk lost permanently mid-pass, with and
without parity, plus the online pass audits."""

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.disks.matrixfile import ColumnStore
from repro.disks.virtual_disk import make_disk_array
from repro.durability.audit import PassAuditor
from repro.errors import AuditError, SpmdError
from repro.oocs.api import sort_out_of_core
from repro.records.format import RecordFormat
from repro.records.generators import generate
from repro.resilience import FaultPlan, FaultSpec, RetryPolicy

#: algorithm → (p, buffer_records, s, striped input?, record size)
CONFIGS = {
    "threaded": (2, 256, 4, False, 16),
    "subblock": (2, 256, 4, False, 16),
    "m": (2, 128, 4, True, 64),
    "hybrid": (2, 128, 4, True, 64),
}

ALGORITHMS = sorted(CONFIGS)


def records_for(algorithm: str, seed: int = 1):
    p, buf, s, striped, rsize = CONFIGS[algorithm]
    fmt = RecordFormat("u8", rsize)
    n = p * buf * s if striped else buf * s
    return fmt, generate("uniform", fmt, n, seed=seed)


def run_sort(algorithm: str, fmt, records, depth: int = 0, **kwargs):
    p, buf, _, _, _ = CONFIGS[algorithm]
    cluster = ClusterConfig(p=p, mem_per_proc=2**12)
    return sort_out_of_core(
        algorithm, records, cluster, fmt, buffer_records=buf,
        pipeline_depth=depth, **kwargs,
    )


def disk_kill_plan(seed: int = 1) -> FaultPlan:
    """Disk 1 fails permanently at its third read and never recovers."""
    return FaultPlan(
        [FaultSpec(op="read", probability=1.0, nth=3, count=None,
                   transient=False, disk=1)],
        seed=seed,
    )


class TestDiskKill:
    @pytest.mark.parametrize("depth", [0, 2])
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_parity_degrades_byte_identically(self, algorithm, depth, tmp_path):
        fmt, records = records_for(algorithm)
        expected = run_sort(algorithm, fmt, records, depth,
                            workdir=tmp_path / "clean")
        expected_bytes = expected.output_records().tobytes()
        expected.output.delete()

        res = run_sort(
            algorithm, fmt, records, depth, workdir=tmp_path / "kill",
            fault_plan=disk_kill_plan(),
            retry_policy=RetryPolicy(max_attempts=4, base_delay_s=0.0),
            watchdog_deadline=10.0, parity=True,
        )
        try:
            assert res.output_records().tobytes() == expected_bytes
            dur = res.durability
            assert dur["parity"] is True
            assert dur["degraded_disks"] == [1]
            assert dur["reconstructed_blocks"] >= 1
            assert dur["spare_writes"] >= 0
            res.output.delete()
        finally:
            res.release_durability()

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_no_parity_fails_structurally(self, algorithm, tmp_path):
        from repro.resilience import release_all_quarantines

        fmt, records = records_for(algorithm)
        try:
            with pytest.raises(SpmdError) as err:
                run_sort(
                    algorithm, fmt, records, depth=2, workdir=tmp_path,
                    fault_plan=disk_kill_plan(),
                    retry_policy=RetryPolicy(max_attempts=4, base_delay_s=0.0),
                    watchdog_deadline=10.0,
                )
            assert err.value.rank is not None
        finally:
            release_all_quarantines()

    def test_clean_parity_run_reports_overhead(self, tmp_path):
        fmt, records = records_for("threaded")
        res = run_sort("threaded", fmt, records, workdir=tmp_path, parity=True)
        try:
            dur = res.durability
            assert dur["parity"] is True
            assert dur["degraded_disks"] == []
            assert dur["parity_bytes_written"] > 0
            assert dur["checksum_failures"] == 0
            res.output.delete()
        finally:
            res.release_durability()


class TestAudit:
    def test_clean_run_audits_every_pass(self, tmp_path):
        fmt, records = records_for("threaded")
        res = run_sort("threaded", fmt, records, workdir=tmp_path, audit=True)
        dur = res.durability
        assert dur["audited_passes"] == res.passes
        assert dur["audited_units"] > 0
        res.output.delete()

    def test_audit_failure_surfaces_as_spmd_error(self, monkeypatch, tmp_path):
        def poisoned(self, algorithm, store, index, total):
            raise AuditError(f"{algorithm} pass {index}/{total}: poisoned")

        monkeypatch.setattr(PassAuditor, "audit_pass", poisoned)
        fmt, records = records_for("threaded")
        with pytest.raises(SpmdError) as err:
            run_sort("threaded", fmt, records, workdir=tmp_path, audit=True)
        assert isinstance(err.value.cause, AuditError)

    def test_auditor_catches_lost_records(self, tmp_path, small_fmt):
        cluster = ClusterConfig(p=2, mem_per_proc=2**12)
        disks = make_disk_array(tmp_path, cluster.virtual_disks)
        recs = generate("uniform", small_fmt, 256, seed=5)
        store = ColumnStore.from_records(
            cluster, small_fmt, recs, 64, 4, disks, name="out"
        )
        # drop half of column 1: the exhaustive size check must fire
        disk = store.disk_for(1)
        disk.delete(store._file(1))
        disk.write_at(store._file(1), 0, recs[:32].tobytes())
        with pytest.raises(AuditError, match="lost or duplicated"):
            PassAuditor().audit_pass("threaded", store, 1, 3)

    def test_auditor_catches_run_structure_violation(self, tmp_path, small_fmt):
        cluster = ClusterConfig(p=2, mem_per_proc=2**12)
        disks = make_disk_array(tmp_path, cluster.virtual_disks)
        recs = generate("uniform", small_fmt, 256, seed=6)
        store = ColumnStore.from_records(
            cluster, small_fmt, recs, 64, 4, disks, name="out"
        )
        # a sawtooth column has ~r/2 maximal runs, far beyond the s bound
        saw = np.sort(recs[:64], order="key")[::-1].copy()
        for j in range(4):
            store.write_column(store.owner(j), j, saw)
        with pytest.raises(AuditError, match="sorted runs"):
            PassAuditor().audit_pass("threaded", store, 1, 3)

    def test_auditor_passes_legal_store(self, tmp_path, small_fmt):
        cluster = ClusterConfig(p=2, mem_per_proc=2**12)
        disks = make_disk_array(tmp_path, cluster.virtual_disks)
        recs = np.sort(generate("uniform", small_fmt, 256, seed=7), order="key")
        store = ColumnStore.from_records(
            cluster, small_fmt, recs, 64, 4, disks, name="out"
        )
        auditor = PassAuditor()
        auditor.audit_pass("threaded", store, 1, 3)
        assert auditor.audited_passes == 1
        assert auditor.audited_units == 2
