"""The overlapped pass pipeline: buffer-pool contracts, depth
equivalence, deadlock regression, and thread hygiene.

The pipeline's load-bearing promise is that depth only changes *when*
I/O happens, never *what* is computed — so every algorithm must produce
byte-identical output at every depth, and a fault or stall inside a
pool thread must surface as a structured error with no threads left
behind.
"""

from __future__ import annotations

import threading
import time
from functools import partial

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.spmd import run_spmd
from repro.cluster.stats import measured_wall
from repro.disks.iostats import IoStats
from repro.disks.matrixfile import ColumnStore, StripedColumnStore
from repro.disks.virtual_disk import make_disk_array
from repro.errors import ConfigError, DiskFullError, PipelineError, SpmdError
from repro.oocs.api import sort_out_of_core
from repro.oocs.base import OocJob, make_workspace, pass_step2_deal
from repro.pipeline import (
    CATEGORIES,
    COMPUTE,
    READ_WAIT,
    SYNCHRONOUS,
    PipelinePlan,
    ReadAhead,
    StageClock,
    WriteBehind,
)
from repro.records.format import RecordFormat
from repro.records.generators import generate

FMT = RecordFormat("u8", 16)


def pipeline_threads() -> list[threading.Thread]:
    return [t for t in threading.enumerate() if t.name.startswith("pipeline-")]


def assert_no_pipeline_threads(deadline_s: float = 5.0) -> None:
    """Poll until every pool worker is gone (close() joins with a
    timeout, so allow a grace period before declaring a leak)."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if not pipeline_threads():
            return
        time.sleep(0.01)
    raise AssertionError(f"leaked pipeline threads: {pipeline_threads()}")


# -- plan --------------------------------------------------------------------


class TestPipelinePlan:
    def test_synchronous_is_depth_zero(self):
        assert SYNCHRONOUS.depth == 0

    def test_negative_depth_rejected(self):
        with pytest.raises(ConfigError):
            PipelinePlan(depth=-1)

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ConfigError):
            PipelinePlan(depth=1, timeout=0)

    def test_job_rejects_negative_depth(self):
        cluster = ClusterConfig(p=2, mem_per_proc=2**10)
        with pytest.raises(ConfigError):
            OocJob(cluster=cluster, fmt=FMT, n=128, buffer_records=32,
                   pipeline_depth=-1)

    def test_job_plan_roundtrip(self):
        cluster = ClusterConfig(p=2, mem_per_proc=2**10)
        job = OocJob(cluster=cluster, fmt=FMT, n=128, buffer_records=32,
                     pipeline_depth=3)
        assert job.pipeline_plan().depth == 3
        job0 = OocJob(cluster=cluster, fmt=FMT, n=128, buffer_records=32)
        assert job0.pipeline_plan() is SYNCHRONOUS


# -- read-ahead --------------------------------------------------------------


class TestReadAhead:
    @pytest.mark.parametrize("depth", [0, 1, 2, 4])
    def test_results_delivered_in_submission_order(self, depth):
        tasks = [partial(lambda k: k, k) for k in range(10)]
        reader = ReadAhead(tasks, PipelinePlan(depth=depth))
        try:
            assert [reader.get() for _ in range(10)] == list(range(10))
        finally:
            reader.close()

    def test_worker_error_reraised_as_same_object(self):
        boom = DiskFullError("disk 0 full")

        def fail():
            raise boom

        tasks = [partial(lambda: 1), fail, partial(lambda: 3)]
        reader = ReadAhead(tasks, PipelinePlan(depth=2))
        try:
            assert reader.get() == 1
            with pytest.raises(DiskFullError) as exc_info:
                reader.get()
            assert exc_info.value is boom
        finally:
            reader.close()
        assert_no_pipeline_threads()

    def test_get_past_end_raises(self):
        reader = ReadAhead([partial(lambda: 1)], SYNCHRONOUS)
        assert reader.get() == 1
        with pytest.raises(PipelineError):
            reader.get()

    def test_close_is_idempotent_and_unblocks_producer(self):
        # Five tasks behind a depth-1 queue, none consumed: the worker is
        # blocked on a full queue when close() arrives.
        tasks = [partial(lambda k: k, k) for k in range(5)]
        reader = ReadAhead(tasks, PipelinePlan(depth=1))
        time.sleep(0.05)  # let the worker fill the queue
        reader.close()
        reader.close()
        assert_no_pipeline_threads()

    def test_stalled_read_times_out_with_pipeline_error(self):
        release = threading.Event()

        def stalled():
            release.wait()
            return 42

        reader = ReadAhead([stalled], PipelinePlan(depth=1, timeout=0.3))
        try:
            with pytest.raises(PipelineError, match="stalled"):
                reader.get()
        finally:
            release.set()
            reader.close()
        assert_no_pipeline_threads()

    def test_read_wait_recorded(self):
        clock = StageClock()
        reader = ReadAhead([partial(lambda: 7)], SYNCHRONOUS, clock)
        reader.get()
        assert clock.totals[READ_WAIT] >= 0


# -- write-behind ------------------------------------------------------------


class TestWriteBehind:
    @pytest.mark.parametrize("depth", [0, 1, 2, 4])
    def test_writes_retired_in_submission_order(self, depth):
        retired: list[int] = []
        with WriteBehind(PipelinePlan(depth=depth)) as writer:
            for k in range(20):
                writer.put(partial(retired.append, k))
        assert retired == list(range(20))
        assert_no_pipeline_threads()

    def test_worker_error_surfaces_from_drain_as_same_object(self):
        boom = DiskFullError("disk 1 full")

        def fail():
            raise boom

        writer = WriteBehind(PipelinePlan(depth=2))
        try:
            writer.put(fail)
            with pytest.raises(DiskFullError) as exc_info:
                writer.drain()
            assert exc_info.value is boom
        finally:
            writer.close()
        assert_no_pipeline_threads()

    def test_error_fails_subsequent_puts_and_skips_backlog(self):
        boom = DiskFullError("disk 2 full")
        retired: list[int] = []

        def fail():
            raise boom

        writer = WriteBehind(PipelinePlan(depth=1))
        try:
            writer.put(fail)
            with pytest.raises(DiskFullError) as exc_info:
                # The error lands while these queue up; one of the puts
                # (or the drain) must re-raise it.
                for k in range(50):
                    writer.put(partial(retired.append, k))
                writer.drain()
            assert exc_info.value is boom
        finally:
            writer.close()
        assert_no_pipeline_threads()

    def test_stalled_write_times_out_on_drain(self):
        release = threading.Event()
        writer = WriteBehind(PipelinePlan(depth=1, timeout=0.3))
        try:
            writer.put(release.wait)
            with pytest.raises(PipelineError, match="drain timed out"):
                writer.drain()
        finally:
            release.set()
            writer.close()
        assert_no_pipeline_threads()

    def test_context_manager_skips_drain_on_error_exit(self):
        release = threading.Event()
        with pytest.raises(RuntimeError, match="unrelated"):
            with WriteBehind(PipelinePlan(depth=1, timeout=0.3)) as writer:
                writer.put(release.wait)
                raise RuntimeError("unrelated failure mid-pass")
        release.set()
        assert_no_pipeline_threads()

    def test_synchronous_put_runs_inline(self):
        clock = StageClock()
        retired: list[int] = []
        writer = WriteBehind(SYNCHRONOUS, clock)
        writer.put(partial(retired.append, 1))
        assert retired == [1]  # already retired — no thread involved
        assert not pipeline_threads()
        writer.close()


# -- stage clock -------------------------------------------------------------


class TestStageClock:
    def test_stage_accumulates(self):
        clock = StageClock()
        with clock.stage(COMPUTE):
            pass
        with clock.stage(COMPUTE):
            pass
        assert set(clock.totals) == {COMPUTE}
        assert clock.totals[COMPUTE] >= 0

    def test_merge_into_adds(self):
        clock = StageClock()
        clock.add(COMPUTE, 1.5)
        wall = {COMPUTE: 1.0}
        clock.merge_into(wall)
        assert wall[COMPUTE] == pytest.approx(2.5)

    def test_measured_wall_aggregates_passes(self):
        class FakePass:
            def __init__(self, wall):
                self.wall = wall

        total = measured_wall([FakePass({"compute": 1.0, "comm": 2.0}),
                               FakePass({"compute": 0.5})])
        assert total == {"compute": 1.5, "comm": 2.0}


# -- depth equivalence -------------------------------------------------------

EQUIVALENCE_CONFIGS = [
    ("threaded", 2, 32, 128),  # algorithm, P, buffer_records, N
    ("subblock", 2, 32, 128),
    ("m", 2, 32, 256),
    ("hybrid", 2, 128, 1024),
]


@pytest.mark.parametrize(
    "algorithm,p,buf,n", EQUIVALENCE_CONFIGS, ids=[c[0] for c in EQUIVALENCE_CONFIGS]
)
def test_output_byte_identical_across_depths(algorithm, p, buf, n, tmp_path):
    """Acceptance: depths {0, 1, 2, 4} produce byte-identical PDM output
    for every out-of-core algorithm."""
    fmt = RecordFormat("u8", 16)
    cluster = ClusterConfig(p=p, mem_per_proc=2**12)
    recs = generate("uniform", fmt, n, seed=11)
    baseline = None
    for depth in (0, 1, 2, 4):
        res = sort_out_of_core(
            algorithm, recs, cluster, fmt, buffer_records=buf,
            workdir=tmp_path / f"d{depth}", pipeline_depth=depth,
        )
        blob = fmt.to_bytes(res.output.read_all())
        if baseline is None:
            baseline = blob
        else:
            assert blob == baseline, f"depth {depth} diverged for {algorithm}"
    assert_no_pipeline_threads()


def test_stage_wall_recorded_at_all_depths(tmp_path):
    """Every traced run carries a wall breakdown; pipelined runs spend
    their waits in read_wait/write_wait like the synchronous ones."""
    fmt = RecordFormat("u8", 16)
    cluster = ClusterConfig(p=2, mem_per_proc=2**12)
    recs = generate("uniform", fmt, 128, seed=5)
    for depth in (0, 2):
        res = sort_out_of_core(
            "threaded", recs, cluster, fmt, buffer_records=32,
            workdir=tmp_path / f"w{depth}", pipeline_depth=depth,
        )
        wall = res.stage_wall()
        assert wall and set(wall) <= set(CATEGORIES)
        assert sum(wall.values()) > 0
        for pass_trace in res.trace.passes:
            assert pass_trace.wall  # every pass measured, not just the run


# -- deadlock regression -----------------------------------------------------


def test_stalled_reader_raises_spmd_error_not_hang(tmp_path, hard_timeout):
    """A depth-1 pipeline whose underlying read stalls must surface a
    PipelineError through the SPMD error path — never hang the world."""
    cluster = ClusterConfig(p=2, mem_per_proc=2**10)
    r, s = 32, 4
    recs = generate("uniform", FMT, r * s, seed=3)
    ws = make_workspace(cluster, FMT, recs, r, s, workdir=tmp_path)
    release = threading.Event()
    real_read = ws.input.read_column

    def stalling_read(rank, j, **kwargs):
        if rank == 1:
            release.wait()  # rank 1's prefetcher never comes back
        return real_read(rank, j, **kwargs)

    ws.input.read_column = stalling_read
    dst = ColumnStore(cluster, FMT, r, s, ws.disks, name="stall-t1")
    plan = PipelinePlan(depth=1, timeout=1.0)

    def prog(comm):
        pass_step2_deal(comm, ws.input, dst, FMT, None, plan=plan)

    try:
        with hard_timeout(60, "stalled reader hung the SPMD world"):
            with pytest.raises(SpmdError) as exc_info:
                run_spmd(cluster.p, prog, timeout=10)
            assert isinstance(exc_info.value.cause, PipelineError)
            assert exc_info.value.rank == 1
    finally:
        release.set()
    assert_no_pipeline_threads()


def test_normal_pipelined_run_leaves_no_threads(tmp_path):
    before = set(threading.enumerate())
    fmt = RecordFormat("u8", 16)
    cluster = ClusterConfig(p=2, mem_per_proc=2**12)
    recs = generate("uniform", fmt, 256, seed=9)
    sort_out_of_core(
        "subblock", recs, cluster, fmt, buffer_records=64,
        workdir=tmp_path, pipeline_depth=4,
    )
    assert_no_pipeline_threads()
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        extra = set(threading.enumerate()) - before
        if not extra:
            break
        time.sleep(0.01)
    assert not extra, f"leaked threads: {extra}"


# -- concurrency stress ------------------------------------------------------


def _hammer(n_threads: int, fn) -> None:
    """Run ``fn(thread_index)`` on ``n_threads`` threads, started on a
    barrier so the critical sections genuinely collide."""
    barrier = threading.Barrier(n_threads)
    errors: list[BaseException] = []

    def body(k):
        barrier.wait()
        try:
            fn(k)
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=body, args=(k,)) for k in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not errors, errors


class TestConcurrencyStress:
    def test_iostats_totals_exact_under_contention(self):
        stats = IoStats()
        n_threads, per_thread = 8, 500

        def work(_):
            for _ in range(per_thread):
                stats.record_read(3)
                stats.record_write(5)

        _hammer(n_threads, work)
        snap = stats.snapshot()
        assert snap["reads"] == snap["writes"] == n_threads * per_thread
        assert snap["bytes_read"] == 3 * n_threads * per_thread
        assert snap["bytes_written"] == 5 * n_threads * per_thread

    def test_column_append_cursor_race(self, tmp_path):
        """Concurrent appenders (rank thread + flusher, here amplified
        to 8 threads) must land in disjoint rows: nothing lost, nothing
        overwritten."""
        cluster = ClusterConfig(p=1, mem_per_proc=2**10)
        disks = make_disk_array(tmp_path, cluster.virtual_disks)
        n_threads, per_thread, chunk = 8, 16, 4
        r = n_threads * per_thread * chunk
        store = ColumnStore(cluster, FMT, r, 1, disks, name="race")

        def work(k):
            for i in range(per_thread):
                keys = np.full(chunk, k * per_thread + i, dtype=np.uint64)
                store.append_to_column(0, 0, FMT.make(keys))

        _hammer(n_threads, work)
        assert store.cursor(0) == r
        got = np.sort(store.read_column(0, 0)["key"])
        want = np.sort(np.repeat(np.arange(n_threads * per_thread,
                                           dtype=np.uint64), chunk))
        assert np.array_equal(got, want)

    def test_striped_append_cursor_race(self, tmp_path):
        cluster = ClusterConfig(p=2, mem_per_proc=2**10)
        disks = make_disk_array(tmp_path, cluster.virtual_disks)
        n_threads, per_thread, chunk = 4, 16, 2
        portion = n_threads * per_thread * chunk
        store = StripedColumnStore(
            cluster, FMT, portion * cluster.p, 1, disks, name="srace"
        )

        def work(k):
            for i in range(per_thread):
                keys = np.full(chunk, k * per_thread + i, dtype=np.uint64)
                store.append_to_portion(0, 0, FMT.make(keys))

        _hammer(n_threads, work)
        assert store.cursor(0, 0) == portion
        got = np.sort(store.read_portion(0, 0)["key"])
        want = np.sort(np.repeat(np.arange(n_threads * per_thread,
                                           dtype=np.uint64), chunk))
        assert np.array_equal(got, want)


# -- faults through the async path (unit level) ------------------------------


def test_disk_full_through_flusher_thread(tmp_path):
    """A DiskFullError raised inside the write-behind worker reaches the
    caller as the same DiskFullError."""
    cluster = ClusterConfig(p=1, mem_per_proc=2**10)
    r = 64
    disks = make_disk_array(tmp_path, cluster.virtual_disks,
                            capacity_bytes=FMT.nbytes(r // 2))
    store = ColumnStore(cluster, FMT, r, 1, disks, name="full")
    writer = WriteBehind(PipelinePlan(depth=2))
    recs = FMT.make(np.arange(r // 4, dtype=np.uint64))
    try:
        with pytest.raises(DiskFullError):
            for _ in range(8):
                writer.put(partial(store.append_to_column, 0, 0, recs))
            writer.drain()
    finally:
        writer.close()
    assert_no_pipeline_threads()
