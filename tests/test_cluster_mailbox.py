"""The mailbox fabric: ordering, drainage, shutdown."""

import threading
import time

import pytest

from repro.cluster.mailbox import MailboxRouter
from repro.errors import CommError


class TestRouting:
    def test_fifo_per_triple(self):
        router = MailboxRouter(timeout=1)
        for k in range(10):
            router.put(0, 1, "t", k)
        assert [router.get(0, 1, "t") for _ in range(10)] == list(range(10))

    def test_triples_are_independent(self):
        router = MailboxRouter(timeout=1)
        router.put(0, 1, "a", "on-a")
        router.put(0, 1, "b", "on-b")
        router.put(1, 1, "a", "other-source")
        assert router.get(0, 1, "b") == "on-b"
        assert router.get(1, 1, "a") == "other-source"
        assert router.get(0, 1, "a") == "on-a"

    def test_pending_counts(self):
        router = MailboxRouter(timeout=1)
        assert router.pending() == {}
        router.put(0, 1, "t", "x")
        router.put(0, 1, "t", "y")
        router.put(2, 0, "u", "z")
        pending = router.pending()
        assert pending[(0, 1, "t")] == 2
        assert pending[(2, 0, "u")] == 1
        router.get(0, 1, "t")
        assert router.pending()[(0, 1, "t")] == 1

    def test_fabric_drains_after_spmd_run(self):
        """No stray messages survive a complete SPMD program — every
        send was received (protocol completeness)."""
        from repro.cluster.comm import Comm
        from repro.cluster.mailbox import MailboxRouter

        router = MailboxRouter(timeout=5)
        comms = [Comm(p, 2, router) for p in range(2)]
        results = []

        def rank(p):
            comms[p].send(p, dest=1 - p)
            results.append(comms[p].recv(source=1 - p))
            comms[p].allgather(p)

        threads = [threading.Thread(target=rank, args=(p,)) for p in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert router.pending() == {}


class TestTimeoutsAndShutdown:
    def test_timeout_raises_comm_error(self):
        router = MailboxRouter(timeout=0.2)
        t0 = time.monotonic()
        with pytest.raises(CommError, match="timed out"):
            router.get(0, 1, "never")
        assert time.monotonic() - t0 < 2

    def test_close_interrupts_blocked_get_quickly(self):
        router = MailboxRouter(timeout=60)
        errors = []

        def blocked():
            try:
                router.get(0, 1, "never")
            except CommError as exc:
                errors.append(exc)

        t = threading.Thread(target=blocked)
        t.start()
        time.sleep(0.1)
        router.close()
        t.join(timeout=5)
        assert not t.is_alive()
        assert errors and "shut down" in str(errors[0])

    def test_put_after_close_rejected(self):
        router = MailboxRouter(timeout=1)
        router.close()
        with pytest.raises(CommError, match="shut down"):
            router.put(0, 1, "t", "x")

    def test_get_after_close_rejected(self):
        router = MailboxRouter(timeout=1)
        router.put(0, 1, "t", "x")
        router.close()
        with pytest.raises(CommError, match="shut down"):
            router.get(0, 1, "t")
