"""The columnsort permutations: matrix ops vs index maps, inverses, and
the paper's worked example."""

import numpy as np
import pytest

from repro.errors import DimensionError
from repro.matrix.permutations import (
    apply_index_map,
    column_major_rank,
    shift_down,
    shift_down_target,
    shift_up,
    step2,
    step2_target,
    step4,
    step4_target,
    subblock,
    subblock_target,
    subblock_target_bitwise,
)

SHAPES = [(8, 2), (8, 4), (32, 4), (64, 8), (128, 16), (36, 6)]
SUBBLOCK_SHAPES = [(16, 4), (32, 4), (64, 16), (256, 16), (128, 4)]


def grid(r, s):
    return np.arange(r * s).reshape(r, s)


class TestStep2:
    def test_paper_example_6x3(self):
        """§2's example: the 6-entry column a..f becomes the 2×3 block
        [[a b c], [d e f]]."""
        m = np.empty((6, 3), dtype=object)
        m[:, 0] = list("abcdef")
        m[:, 1] = list("ghijkl")
        m[:, 2] = list("mnopqr")
        out = step2(m)
        assert list(out[0]) == ["a", "b", "c"]
        assert list(out[1]) == ["d", "e", "f"]
        assert list(out[2]) == ["g", "h", "i"]

    @pytest.mark.parametrize("r,s", SHAPES)
    def test_matches_index_map(self, r, s):
        m = grid(r, s)
        assert np.array_equal(step2(m), apply_index_map(m, step2_target))

    @pytest.mark.parametrize("r,s", SHAPES)
    def test_step4_is_inverse(self, r, s):
        m = grid(r, s)
        assert np.array_equal(step4(step2(m)), m)
        assert np.array_equal(step2(step4(m)), m)

    @pytest.mark.parametrize("r,s", SHAPES)
    def test_target_column_is_i_mod_s(self, r, s):
        ii, jj = np.meshgrid(np.arange(r), np.arange(s), indexing="ij")
        _, tj = step2_target(ii, jj, r, s)
        assert np.array_equal(tj, ii % s)

    @pytest.mark.parametrize("r,s", SHAPES)
    def test_source_column_lands_in_band(self, r, s):
        """Column j maps to rows [j·r/s, (j+1)·r/s) — the band structure
        the out-of-core write stage relies on."""
        band = r // s
        for j in range(s):
            ti, _ = step2_target(np.arange(r), j, r, s)
            assert ti.min() == j * band and ti.max() == (j + 1) * band - 1

    def test_rejects_non_dividing_s(self):
        with pytest.raises(DimensionError):
            step2(np.zeros((10, 3)))
        with pytest.raises(DimensionError):
            step2_target(0, 0, 10, 3)


class TestStep4:
    @pytest.mark.parametrize("r,s", SHAPES)
    def test_matches_index_map(self, r, s):
        m = grid(r, s)
        assert np.array_equal(step4(m), apply_index_map(m, step4_target))

    @pytest.mark.parametrize("r,s", SHAPES)
    def test_maps_are_mutual_inverses(self, r, s):
        ii, jj = np.meshgrid(np.arange(r), np.arange(s), indexing="ij")
        ti, tj = step2_target(ii, jj, r, s)
        bi, bj = step4_target(ti, tj, r, s)
        assert np.array_equal(bi, ii) and np.array_equal(bj, jj)

    @pytest.mark.parametrize("r,s", SHAPES)
    def test_chunks_go_to_consecutive_columns(self, r, s):
        chunk = r // s
        for m_idx in range(s):
            rows = np.arange(m_idx * chunk, (m_idx + 1) * chunk)
            _, tj = step4_target(rows, 0, r, s)
            assert np.all(tj == m_idx)


class TestShifts:
    @pytest.mark.parametrize("r,s", SHAPES)
    def test_shift_down_shape_and_padding(self, r, s):
        m = grid(r, s)
        half = r // 2
        lo = np.full(half, -1)
        hi = np.full(half, 10**9)
        out = shift_down(m, lo, hi)
        assert out.shape == (r, s + 1)
        assert np.all(out[:half, 0] == -1)
        assert np.all(out[half:, s] == 10**9)

    @pytest.mark.parametrize("r,s", SHAPES)
    def test_shift_up_inverts_shift_down(self, r, s):
        m = grid(r, s)
        half = r // 2
        out = shift_up(shift_down(m, np.full(half, -1), np.full(half, -2)))
        assert np.array_equal(out, m)

    @pytest.mark.parametrize("r,s", [(8, 2), (32, 4)])
    def test_shift_down_target_advances_rank_by_half(self, r, s):
        half = r // 2
        for i, j in [(0, 0), (r - 1, s - 1), (half, 1 % s)]:
            ti, tj = shift_down_target(i, j, r, s)
            assert column_major_rank(ti, tj, r) == column_major_rank(i, j, r) + half

    def test_odd_r_rejected(self):
        with pytest.raises(DimensionError):
            shift_down(np.zeros((3, 3)), np.zeros(1), np.zeros(1))
        with pytest.raises(DimensionError):
            shift_down_target(0, 0, 3, 3)

    def test_wrong_padding_length_rejected(self):
        with pytest.raises(DimensionError):
            shift_down(np.zeros((4, 2)), np.zeros(3), np.zeros(2))


class TestSubblockPermutation:
    @pytest.mark.parametrize("r,s", SUBBLOCK_SHAPES)
    def test_matrix_op_matches_arithmetic_map(self, r, s):
        m = grid(r, s)
        assert np.array_equal(subblock(m), apply_index_map(m, subblock_target))

    @pytest.mark.parametrize("r,s", SUBBLOCK_SHAPES)
    def test_figure1_bitwise_equals_arithmetic(self, r, s):
        """The Figure 1 bit permutation and the §3 arithmetic formula
        are the same map — checked exhaustively."""
        ii, jj = np.meshgrid(np.arange(r), np.arange(s), indexing="ij")
        ai, aj = subblock_target(ii, jj, r, s)
        bi, bj = subblock_target_bitwise(ii, jj, r, s)
        assert np.array_equal(ai, bi)
        assert np.array_equal(aj, bj)

    @pytest.mark.parametrize("r,s", SUBBLOCK_SHAPES)
    def test_is_a_permutation(self, r, s):
        ii, jj = np.meshgrid(np.arange(r), np.arange(s), indexing="ij")
        ti, tj = subblock_target(ii, jj, r, s)
        ranks = np.sort((tj * r + ti).ravel())
        assert np.array_equal(ranks, np.arange(r * s))

    def test_worked_entry(self):
        """Hand-computed: r=16, s=16 (√s=4): (i=6, j=9) → i' = ⌊9/4⌋·4 +
        ⌊6/4⌋ = 9, j' = 9 mod 4 + (6 mod 4)·4 = 1 + 8 = 9."""
        assert subblock_target(6, 9, 16, 16) == (9, 9)

    def test_rejects_non_power_of_4_s(self):
        with pytest.raises(DimensionError):
            subblock(np.zeros((16, 8)))

    def test_rejects_sqrt_s_not_dividing_r(self):
        with pytest.raises(DimensionError):
            subblock_target_bitwise(0, 0, 6, 4)
