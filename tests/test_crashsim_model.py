"""The crashsim model itself: POSIX-legality of every enumerated state
(the hypothesis property the ISSUE pins down), the durability scan's
barrier semantics, and the interposer's op capture.

These tests validate the *harness*, not the recovery code — if the
model can generate an illegal state or miss a legal one the sweep's
zero-violation verdicts mean nothing.
"""

from __future__ import annotations

import builtins
import io
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crashsim import (
    CrashState,
    Op,
    durable_at,
    enumerate_crash_states,
    is_legal_state,
    materialize,
    pending_at,
    trace,
)
from repro.crashsim.oplog import BARRIER_KINDS, parent_dir
from repro.durability.atomic import atomic_write_bytes

# ---------------------------------------------------------------------------
# random op logs for the property tests
# ---------------------------------------------------------------------------

_PATHS = ("a", "b", "sub/c")
_DIRS = ("", "sub")
_INODES = (1, 2, 3)


@st.composite
def op_logs(draw) -> list[Op]:
    """Structurally coherent random op logs (parents derived from
    paths, inodes from a small pool) — fs-level coherence is not
    required; the legality rules are purely op-log-structural."""
    n = draw(st.integers(min_value=1, max_value=20))
    ops: list[Op] = []
    for index in range(n):
        kind = draw(
            st.sampled_from(
                ["write", "truncate", "create", "rename", "unlink",
                 "mkdir", "rmdir", "fsync", "fsync_dir"]
            )
        )
        if kind == "write":
            ops.append(
                Op(
                    index=index,
                    kind=kind,
                    inode=draw(st.sampled_from(_INODES)),
                    offset=draw(st.integers(min_value=0, max_value=64)),
                    data=draw(st.binary(min_size=1, max_size=700)),
                )
            )
        elif kind == "truncate":
            ops.append(
                Op(
                    index=index,
                    kind=kind,
                    inode=draw(st.sampled_from(_INODES)),
                    size=draw(st.integers(min_value=0, max_value=64)),
                )
            )
        elif kind == "fsync":
            ops.append(
                Op(index=index, kind=kind, inode=draw(st.sampled_from(_INODES)))
            )
        elif kind == "fsync_dir":
            ops.append(
                Op(index=index, kind=kind, path=draw(st.sampled_from(_DIRS)))
            )
        elif kind == "rename":
            dst = draw(st.sampled_from(_PATHS))
            ops.append(
                Op(
                    index=index,
                    kind=kind,
                    src=draw(st.sampled_from(_PATHS)),
                    path=dst,
                    inode=draw(st.sampled_from(_INODES)),
                    parent=parent_dir(dst),
                )
            )
        else:  # create / unlink / mkdir / rmdir
            path = draw(st.sampled_from(_PATHS if kind != "mkdir" else _DIRS[1:]))
            ops.append(
                Op(
                    index=index,
                    kind=kind,
                    path=path,
                    inode=draw(st.sampled_from(_INODES)),
                    parent=parent_dir(path),
                )
            )
    return ops


@settings(max_examples=60, deadline=None)
@given(op_logs())
def test_every_enumerated_state_is_legal(ops):
    """The acceptance property: everything the enumerator produces is
    reachable under the POSIX rules the legality checker re-derives."""
    for state in enumerate_crash_states(ops):
        assert is_legal_state(ops, state), (
            f"illegal state {state} for ops "
            f"{[op.describe() for op in ops]}"
        )


@settings(max_examples=40, deadline=None)
@given(op_logs())
def test_durable_and_pending_partition_the_issued_ops(ops):
    for crash_index in range(len(ops) + 1):
        durable = durable_at(ops, crash_index)
        pending = {op.index for op in pending_at(ops, crash_index)}
        issued = {
            op.index
            for op in ops[:crash_index]
            if op.kind not in BARRIER_KINDS
        }
        assert durable | pending == issued
        assert not durable & pending


@settings(max_examples=25, deadline=None)
@given(op_logs())
def test_enumeration_is_deterministic(ops):
    assert enumerate_crash_states(ops) == enumerate_crash_states(ops)


@settings(max_examples=25, deadline=None)
@given(op_logs(), st.integers(min_value=0))
def test_materialize_never_crashes(tmp_path_factory, ops, pick):
    states = enumerate_crash_states(ops)
    state = states[pick % len(states)]
    from repro.crashsim import Snapshot

    dest = tmp_path_factory.mktemp("mat")
    materialize(ops, state, Snapshot(dirs={""}), dest / "t")
    assert (dest / "t").is_dir()


# ---------------------------------------------------------------------------
# barrier semantics, pinned by hand
# ---------------------------------------------------------------------------


def _write(i, inode, data=b"x" * 8, offset=0):
    return Op(index=i, kind="write", inode=inode, offset=offset, data=data)


def test_fsync_covers_only_its_inode():
    ops = [_write(0, 1), _write(1, 2), Op(index=2, kind="fsync", inode=1)]
    assert durable_at(ops, 3) == frozenset({0})
    assert {op.index for op in pending_at(ops, 3)} == {1}


def test_fsync_dir_covers_only_its_directory():
    ops = [
        Op(index=0, kind="create", path="a", inode=1, parent=""),
        Op(index=1, kind="create", path="sub/c", inode=2, parent="sub"),
        Op(index=2, kind="fsync_dir", path="sub"),
    ]
    assert durable_at(ops, 3) == frozenset({1})


def test_fsync_before_crash_point_is_honored_immediately():
    ops = [_write(0, 1), Op(index=1, kind="fsync", inode=1)]
    # An issued fsync has already done its work even if the crash
    # follows on the very next instruction.
    assert durable_at(ops, 2) == frozenset({0})


def test_zero_length_file_state_is_enumerated():
    """The classic bug state — rename durable-ordered after the data
    write, but the write dropped — must be in the enumeration when no
    fsync ordered them."""
    ops = [
        Op(index=0, kind="create", path="m.tmp", inode=1, parent=""),
        _write(1, 1, b"manifest"),
        Op(index=2, kind="rename", src="m.tmp", path="m", inode=1, parent=""),
    ]
    states = enumerate_crash_states(ops, crash_indices=[3])
    assert any(
        2 in state.applied and 1 not in state.applied for state in states
    )


def test_fsynced_write_cannot_be_lost_under_applied_rename():
    """With the full atomic discipline (fsync file, rename, fsync dir)
    no state applies the rename without the data."""
    ops = [
        Op(index=0, kind="create", path="m.tmp", inode=1, parent=""),
        _write(1, 1, b"manifest"),
        Op(index=2, kind="fsync", inode=1),
        Op(index=3, kind="rename", src="m.tmp", path="m", inode=1, parent=""),
        Op(index=4, kind="fsync_dir", path=""),
    ]
    for state in enumerate_crash_states(ops):
        if state.crash_index >= 3 and 3 in state.applied:
            assert 1 in durable_at(ops, state.crash_index)


def test_torn_write_materializes_as_prefix(tmp_path):
    ops = [
        Op(index=0, kind="create", path="f", inode=1, parent=""),
        _write(1, 1, b"ABCDEFGH"),
    ]
    from repro.crashsim import Snapshot

    state = CrashState(
        crash_index=2, applied=frozenset({0, 1}), torn=((1, 3),)
    )
    assert is_legal_state(ops, state)
    dest = materialize(ops, state, Snapshot(dirs={""}), tmp_path / "t")
    assert (dest / "f").read_bytes() == b"ABC"


def test_illegal_states_are_rejected():
    ops = [
        Op(index=0, kind="create", path="a", inode=1, parent=""),
        Op(index=1, kind="create", path="b", inode=2, parent=""),
        _write(2, 1, b"zz"),
        Op(index=3, kind="fsync", inode=1),
    ]
    # namespace gap: second create applied without the first
    assert not is_legal_state(
        ops, CrashState(crash_index=2, applied=frozenset({1}))
    )
    # applying an already-durable op as "pending"
    assert not is_legal_state(
        ops, CrashState(crash_index=4, applied=frozenset({2}))
    )
    # torn length past the data
    assert not is_legal_state(
        ops,
        CrashState(crash_index=3, applied=frozenset({0, 1, 2}),
                   torn=((2, 99),)),
    )


# ---------------------------------------------------------------------------
# the interposer
# ---------------------------------------------------------------------------


def test_trace_records_the_atomic_write_discipline(tmp_path):
    root = tmp_path / "r"
    with trace(root) as rec:
        atomic_write_bytes(root / "doc.json", b'{"k":1}')
    kinds = [op.kind for op in rec.ops]
    assert kinds == ["create", "write", "fsync", "rename", "fsync_dir"]
    create, write, fsync, rename, fsync_dir = rec.ops
    assert create.path == "doc.json.tmp"
    assert write.inode == create.inode and write.data == b'{"k":1}'
    assert fsync.inode == create.inode
    assert rename.src == "doc.json.tmp" and rename.path == "doc.json"
    assert rename.inode == create.inode
    assert fsync_dir.path == ""  # the traced root itself
    # the whole sequence is durable: exactly one crash state per point
    assert durable_at(rec.ops, len(rec.ops)) == frozenset({0, 1, 3})


def test_trace_keeps_data_ops_on_inodes_across_rename(tmp_path):
    root = tmp_path / "r"
    with trace(root) as rec:
        with open(root / "t.tmp", "wb") as fh:
            fh.write(b"hello")
        os.replace(root / "t.tmp", root / "final")
        with open(root / "final", "ab") as fh:
            fh.write(b" world")
    writes = [op for op in rec.ops if op.kind == "write"]
    assert len(writes) == 2
    assert writes[0].inode == writes[1].inode
    assert writes[1].offset == 5  # append offset tracked through rename


def test_trace_ignores_paths_outside_the_root(tmp_path):
    root = tmp_path / "r"
    outside = tmp_path / "elsewhere.txt"
    with trace(root) as rec:
        outside.write_text("not recorded")
    assert rec.ops == []


def test_trace_restores_the_patched_functions(tmp_path):
    before = (builtins.open, io.open, os.replace, os.fsync, os.unlink)
    with trace(tmp_path / "r"):
        assert builtins.open is not before[0]
    after = (builtins.open, io.open, os.replace, os.fsync, os.unlink)
    assert before == after


def test_trace_snapshot_seeds_preexisting_tree(tmp_path):
    root = tmp_path / "r"
    root.mkdir()
    (root / "old").write_bytes(b"seed")
    (root / "sub").mkdir()
    with trace(root) as rec:
        pass
    assert rec.initial.files["old"][1] == b"seed"
    assert "sub" in rec.initial.dirs


def test_materialized_full_state_matches_real_tree(tmp_path):
    """Crash-at-end with everything applied reproduces the workload's
    actual final tree byte for byte."""
    root = tmp_path / "r"
    with trace(root) as rec:
        (root / "sub").mkdir()
        atomic_write_bytes(root / "sub" / "x", b"abc")
        with open(root / "plain", "wb") as fh:
            fh.write(b"defg")
        os.unlink(root / "sub" / "x")
    pending = {op.index for op in pending_at(rec.ops, len(rec.ops))}
    state = CrashState(crash_index=len(rec.ops), applied=frozenset(pending))
    dest = materialize(rec.ops, state, rec.initial, tmp_path / "mat")
    real = {
        p.relative_to(root).as_posix(): p.read_bytes()
        for p in root.rglob("*")
        if p.is_file()
    }
    got = {
        p.relative_to(dest).as_posix(): p.read_bytes()
        for p in dest.rglob("*")
        if p.is_file()
    }
    assert got == real
