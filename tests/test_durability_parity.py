"""XOR parity: maintenance, in-place repair, reconstruction, and the
single-disk-loss recovery property."""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.config import ClusterConfig
from repro.disks.matrixfile import ColumnStore
from repro.disks.virtual_disk import VirtualDisk, make_disk_array
from repro.durability import attach_durability
from repro.durability.parity import ParityLayer
from repro.errors import ConfigError, CorruptionError, DiskError
from repro.records.format import RecordFormat
from repro.records.generators import generate
from repro.resilience import DiskQuarantine
from repro.resilience.retry import RetryPolicy


def kill_disk(disk: VirtualDisk) -> None:
    """Physically destroy a disk's primary data (the dot-dirs — parity,
    spare, checksum sidecars — live on 'other media' in this model) and
    declare it dead."""
    for path in disk.root.iterdir():
        if path.is_file():
            path.unlink()
    disk.quarantine.mark_dead(disk.disk_id)


@pytest.fixture
def array(tmp_path):
    disks = make_disk_array(tmp_path, 4)
    quarantine, layer = attach_durability(disks, parity=True)
    yield disks, quarantine, layer
    quarantine.release()


class TestLayerBasics:
    def test_needs_two_disks(self, tmp_path):
        disk = VirtualDisk(tmp_path / "d0", disk_id=0)
        with pytest.raises(ConfigError, match="at least 2 disks"):
            ParityLayer([disk], DiskQuarantine())

    def test_attach_is_idempotent(self, tmp_path):
        disks = make_disk_array(tmp_path, 2)
        q1, l1 = attach_durability(disks, parity=True)
        q2, l2 = attach_durability(disks, parity=True)
        assert q1 is q2 and l1 is l2
        q1.release()

    def test_parity_io_not_metered_as_data_io(self, array):
        disks, _, layer = array
        disks[0].write_at("obj", 0, b"x" * 64)
        snap = disks[0].stats.snapshot()
        assert (snap["writes"], snap["bytes_written"]) == (1, 64)
        assert layer.counters_snapshot()["parity_bytes_written"] >= 64

    def test_delete_folds_parity_rows_away(self, array):
        disks, _, layer = array
        disks[0].write_at("obj", 0, b"x" * 32)
        disks[0].delete("obj")
        assert layer.counters_snapshot()["folds"] == 1
        for disk in disks:
            pdir = disk.root / ".parity"
            assert not pdir.is_dir() or not list(pdir.iterdir())


class TestRepairInPlace:
    def test_corrupt_block_repaired_and_read_retried(self, array):
        disks, quarantine, _ = array
        payload = bytes(range(256))
        disks[1].write_at("obj", 0, payload)
        victim = disks[1].root / "obj"
        blob = bytearray(victim.read_bytes())
        blob[7] ^= 0xFF
        victim.write_bytes(bytes(blob))
        disks[1].retry_policy = RetryPolicy(max_attempts=3, base_delay_s=0.0)
        assert disks[1].read_at("obj", 0, 256) == payload
        snap = disks[1].stats.snapshot()
        assert snap["checksum_failures"] == 1
        assert snap["read_retries"] == 1  # the post-repair re-read
        assert quarantine.snapshot()["repaired_blocks"] == 1
        # the medium itself was healed, not just the returned bytes
        assert victim.read_bytes() == payload

    def test_double_loss_in_one_row_is_structural(self, tmp_path):
        # D=2 stripes every row as (member, parity): corrupt the member
        # AND its parity and the repair must fail structurally.
        disks = make_disk_array(tmp_path, 2)
        quarantine, layer = attach_durability(disks, parity=True)
        disks[0].write_at("obj", 0, b"a" * 16)
        (disks[0].root / "obj").write_bytes(b"b" * 16)
        parity_file = next((disks[1].root / ".parity").iterdir())
        parity_file.write_bytes(b"\0" * 8)  # torn parity: wrong length
        disks[0].retry_policy = RetryPolicy(max_attempts=3, base_delay_s=0.0)
        with pytest.raises(DiskError, match="cannot reconstruct"):
            disks[0].read_at("obj", 0, 16)
        quarantine.release()

    def test_reconstruction_output_is_crc_verified(self, array):
        disks, quarantine, layer = array
        disks[2].write_at("obj", 0, b"q" * 32)
        # rot a *surviving* peer of the row after the fact: parity no
        # longer matches, so the rebuilt bytes must fail verification
        ext = layer._extents[(2, "obj")][0]
        parity = layer._parity_path(ext.row)
        blob = bytearray(parity.read_bytes())
        blob[0] ^= 0xFF
        parity.write_bytes(bytes(blob))
        kill_disk(disks[2])
        try:
            with pytest.raises(CorruptionError):
                disks[2].read_at("obj", 0, 32)
        finally:
            quarantine.release()


class TestDegradedMode:
    def test_dead_disk_reads_served_from_spare(self, array):
        disks, quarantine, _ = array
        payload = b"columnsort" * 10
        disks[3].write_at("obj", 0, payload)
        kill_disk(disks[3])
        assert disks[3].read_at("obj", 0, len(payload)) == payload
        assert quarantine.snapshot()["reconstructed_blocks"] >= 1
        assert (disks[3].root / ".spare" / "obj").exists()
        quarantine.release()

    def test_dead_disk_writes_rerouted_to_spare(self, array):
        disks, quarantine, _ = array
        disks[3].write_at("obj", 0, b"a" * 16)
        kill_disk(disks[3])
        disks[3].write_at("obj", 16, b"b" * 16)
        assert disks[3].read_at("obj", 0, 32) == b"a" * 16 + b"b" * 16
        assert quarantine.snapshot()["spare_writes"] == 1
        quarantine.release()

    def test_degraded_fingerprint_matches_original(self, array):
        disks, quarantine, _ = array
        disks[0].write_at("obj", 0, b"stable bytes here")
        before = disks[0].fingerprint("obj")
        kill_disk(disks[0])
        assert disks[0].fingerprint("obj") == before
        quarantine.release()

    def test_dead_disk_without_parity_fails_fast(self, tmp_path):
        disks = make_disk_array(tmp_path, 2)
        quarantine, _ = attach_durability(disks, parity=False)
        disks[0].write_at("obj", 0, b"abcd")
        quarantine.mark_dead(0)
        with pytest.raises(DiskError, match="quarantined dead"):
            disks[0].read_at("obj", 0, 4)
        # fail-fast must be classified structural, never retried
        assert disks[0].stats.snapshot()["read_retries"] == 0
        quarantine.release()


class TestSingleDiskLossProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        p=st.sampled_from([1, 2]),
        d=st.sampled_from([2, 4]),
        r=st.sampled_from([8, 16, 32]),
        s=st.sampled_from([2, 4]),
        key=st.sampled_from(["u8", "i8", "f8"]),
        record_size=st.sampled_from([16, 32, 48]),
        victim_seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_any_single_lost_disk_recovers_byte_identically(
        self, p, d, r, s, key, record_size, victim_seed
    ):
        fmt = RecordFormat(key, record_size)
        cluster = ClusterConfig(p=p, d=d, mem_per_proc=2**12)
        records = generate("uniform", fmt, r * s, seed=victim_seed)
        with tempfile.TemporaryDirectory(prefix="repro-parity-") as workdir:
            disks = make_disk_array(Path(workdir), cluster.virtual_disks)
            store = ColumnStore.from_records(
                cluster, fmt, records, r, s, disks, name="m", parity=True
            )
            victim = disks[victim_seed % len(disks)]
            try:
                held = any(
                    store.disk_for(j) is victim for j in range(s)
                )
                kill_disk(victim)
                got = np.concatenate(
                    [store.read_column(store.owner(j), j) for j in range(s)]
                )
                assert got.tobytes() == records.tobytes()
                if held:
                    snap = victim.quarantine.snapshot()
                    assert snap["reconstructed_blocks"] >= 1
            finally:
                victim.quarantine.release()
