"""In-run supervised recovery: kill a rank, get the sorted output anyway.

The acceptance bar (ISSUE 8): a run whose rank dies — really dies, by
SIGKILL on the process backend — at any pass boundary or mid-pass must
complete byte-identically to an unkilled run *without re-invocation*,
on both backends, with ``SupervisorStats.restarts >= 1`` and nothing
leaked. The conftest teardown independently enforces the "nothing
leaked" half (leases, quarantines, pipeline threads, child processes,
``/dev/shm`` segments) after every test here.
"""

import pickle
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import available_backends
from repro.cluster.config import ClusterConfig
from repro.cluster.spmd import run_spmd
from repro.errors import (
    AdmissionRejected,
    AuditError,
    BudgetExceeded,
    CancelledError,
    CheckpointError,
    CommError,
    ConfigError,
    CorruptionError,
    DiskError,
    DiskFullError,
    RankKilled,
    SpmdError,
    WatchdogTimeout,
)
from repro.governor import CancelToken, JobGovernor
from repro.oocs.api import sort_out_of_core
from repro.records.format import RecordFormat
from repro.resilience import (
    CheckpointStore,
    DiskQuarantine,
    FaultPlan,
    FaultSpec,
    RestartPolicy,
    RunSupervisor,
    active_quarantines,
)
from repro.records.generators import generate

FMT = RecordFormat("u8", 16)

#: algorithm → (p, buffer_records, s, total passes, striped input?)
CONFIGS = {
    "threaded": (2, 128, 4, 3, False),
    "m": (2, 64, 4, 3, True),
}

WATCHDOG = 15.0


def records_for(algorithm):
    p, buf, s, _, striped = CONFIGS[algorithm]
    n = p * buf * s if striped else buf * s
    return generate("uniform", FMT, n, seed=7)


def expected_bytes(recs):
    return np.sort(recs, order="key", kind="stable").tobytes()


def run_sort(algorithm, recs, depth, **kwargs):
    p, buf, _, _, _ = CONFIGS[algorithm]
    cluster = ClusterConfig(p=p, mem_per_proc=2**10)
    return sort_out_of_core(
        algorithm, recs, cluster, FMT, buffer_records=buf,
        pipeline_depth=depth, **kwargs,
    )


def quick_policy(max_restarts=3):
    return RestartPolicy(
        max_restarts=max_restarts, base_backoff_s=0.001, max_backoff_s=0.01
    )


# ---------------------------------------------------------------------------
# RestartPolicy classification
# ---------------------------------------------------------------------------


class TestRestartPolicyClassification:
    POLICY = RestartPolicy()

    @pytest.mark.parametrize(
        "exc",
        [
            RankKilled("injected rank_kill"),
            WatchdogTimeout(1, 5.0, 1.0),
            RuntimeError("unhandled bug"),
            CommError("mailbox shut down"),
            DiskError("injected read fault (transient)"),
            CorruptionError(0, "x", [(0, 8)], repairable=True),
        ],
        ids=lambda e: type(e).__name__,
    )
    def test_restartable_classes(self, exc):
        assert self.POLICY.restartable(exc)
        # the launcher's wrapper must not change the verdict
        assert self.POLICY.restartable(SpmdError(1, exc))

    @pytest.mark.parametrize(
        "exc",
        [
            CancelledError("operator stop"),
            AdmissionRejected("queue full"),
            BudgetExceeded(1, 1, 1, "backpressure"),
            CheckpointError("digest mismatch"),
            AuditError("invariant violated"),
            ConfigError("bad shape"),
            DiskFullError("out of space"),
            CorruptionError(0, "x", [(0, 8)], repairable=False),
            KeyboardInterrupt(),
        ],
        ids=lambda e: type(e).__name__,
    )
    def test_fatal_classes(self, exc):
        assert not self.POLICY.restartable(exc)
        assert not self.POLICY.restartable(SpmdError(1, exc))

    def test_explicitly_permanent_fault_is_fatal(self):
        exc = DiskError("injected write fault (permanent)")
        exc.transient = False
        assert not self.POLICY.restartable(exc)
        exc.transient = True
        assert self.POLICY.restartable(exc)

    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            RestartPolicy(max_restarts=-1)
        with pytest.raises(ConfigError):
            RestartPolicy(jitter=1.5)
        with pytest.raises(ConfigError):
            RestartPolicy(base_backoff_s=-0.1)


# ---------------------------------------------------------------------------
# RunSupervisor loop
# ---------------------------------------------------------------------------


class TestRunSupervisorLoop:
    def test_clean_first_attempt_records_nothing(self):
        sup = RunSupervisor(quick_policy())
        assert sup.run(lambda: 42) == 42
        assert sup.stats.restarts == 0
        assert sup.stats.attempts == []

    def test_restarts_until_success(self):
        failures = [RankKilled("k1"), RuntimeError("k2")]
        swept = []

        def attempt():
            if failures:
                raise failures.pop(0)
            return "done"

        sup = RunSupervisor(quick_policy())
        out = sup.run(attempt, on_restart=lambda n, exc: swept.append((n, type(exc))))
        assert out == "done"
        assert sup.stats.restarts == 2
        assert swept == [(1, RankKilled), (2, RuntimeError)]
        assert [a["cause"] for a in sup.stats.attempts] == [
            "RankKilled", "RuntimeError",
        ]
        assert all(a["restarted"] for a in sup.stats.attempts)
        assert sup.stats.restart_wall > 0.0

    def test_fatal_cause_reraises_immediately(self):
        calls = []

        def attempt():
            calls.append(1)
            raise CancelledError("stop")

        sup = RunSupervisor(quick_policy())
        with pytest.raises(CancelledError):
            sup.run(attempt)
        assert len(calls) == 1
        assert sup.stats.restarts == 0
        [entry] = sup.stats.attempts
        assert entry["restartable"] is False and entry["restarted"] is False

    def test_budget_exhaustion_reraises_the_last_failure(self):
        def attempt():
            raise RankKilled("again")

        sup = RunSupervisor(quick_policy(max_restarts=2))
        with pytest.raises(RankKilled):
            sup.run(attempt)
        assert sup.stats.restarts == 2
        assert len(sup.stats.attempts) == 3
        assert sup.stats.attempts[-1]["restartable"] is True
        assert sup.stats.attempts[-1]["restarted"] is False

    def test_cancellation_during_backoff_wins_over_the_restart(self):
        cancel = CancelToken()
        cancel.cancel("operator stop")

        def attempt():
            raise RankKilled("crash")

        sup = RunSupervisor(quick_policy(), cancel=cancel)
        with pytest.raises(CancelledError):
            sup.run(attempt)

    def test_spmd_wrapper_rank_lands_in_stats(self):
        def attempt():
            raise SpmdError(3, RankKilled("boom"))

        sup = RunSupervisor(RestartPolicy(max_restarts=0))
        with pytest.raises(SpmdError):
            sup.run(attempt)
        [entry] = sup.stats.attempts
        assert entry["rank"] == 3 and entry["cause"] == "RankKilled"

    def test_backoff_is_seeded_and_bounded(self):
        policy = RestartPolicy(
            max_restarts=5, base_backoff_s=0.01, max_backoff_s=0.03, seed=9
        )
        import random

        a = [policy.delay_s(k, random.Random(9)) for k in range(1, 6)]
        b = [policy.delay_s(k, random.Random(9)) for k in range(1, 6)]
        assert a == b  # same seed, same schedule
        assert all(d <= 0.03 * (1 + policy.jitter) for d in a)


FATAL_EXAMPLES = [
    CancelledError("stop"),
    AdmissionRejected("queue full"),
    BudgetExceeded(1, 1, 1, "x"),
    CheckpointError("untrusted"),
    DiskFullError("full"),
    CorruptionError(0, "x", [(0, 8)], repairable=False),
]
RESTARTABLE_EXAMPLES = [
    RankKilled("killed"),
    WatchdogTimeout(0, 2.0, 1.0),
    RuntimeError("bug"),
    SpmdError(1, RankKilled("killed")),
]


class TestRestartBoundsProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        seq=st.lists(
            st.sampled_from(FATAL_EXAMPLES + RESTARTABLE_EXAMPLES), max_size=6
        ),
        max_restarts=st.integers(min_value=0, max_value=4),
    )
    def test_restarts_never_exceed_budget_and_fatal_never_restarts(
        self, seq, max_restarts
    ):
        policy = RestartPolicy(
            max_restarts=max_restarts, base_backoff_s=0.0, max_backoff_s=0.0
        )
        calls = {"n": 0}

        def attempt():
            i = calls["n"]
            calls["n"] += 1
            if i < len(seq):
                raise seq[i]
            return "ok"

        sup = RunSupervisor(policy)
        try:
            out = sup.run(attempt)
        except BaseException as exc:
            idx = calls["n"] - 1
            assert exc is seq[idx]
            # every failure that *was* restarted had to be restartable
            assert all(policy.restartable(e) for e in seq[:idx])
            # the run only gave up for a legal reason
            assert (not policy.restartable(exc)) or idx == max_restarts
        else:
            assert out == "ok"
            assert len(seq) <= max_restarts
            assert all(policy.restartable(e) for e in seq)
        assert sup.stats.restarts <= max_restarts
        assert sup.stats.restarts == max(0, calls["n"] - 1)


# ---------------------------------------------------------------------------
# The bare run_spmd seam (transport conformance for supervision)
# ---------------------------------------------------------------------------


def _killable_program(comm, plan):
    plan.check("comm", "in killable program")
    comm.barrier()
    return comm.rank


@pytest.mark.parametrize("backend", available_backends())
class TestRunSpmdSeam:
    def test_rank_kill_without_policy_fails_the_run(self, backend):
        plan = FaultPlan([FaultSpec(op="comm", nth=1, count=1, kind="rank_kill")])
        with pytest.raises(SpmdError):
            run_spmd(2, _killable_program, plan, backend=backend, timeout=10.0)

    def test_rank_kill_with_policy_recovers(self, backend):
        plan = FaultPlan([FaultSpec(op="comm", nth=1, count=1, kind="rank_kill")])
        res = run_spmd(
            2, _killable_program, plan,
            backend=backend, timeout=10.0, restart_policy=quick_policy(),
        )
        assert res.returns == [0, 1]
        assert res.supervisor["restarts"] == 1
        assert plan.snapshot()["rank_kills"] == 1
        [entry] = res.supervisor["attempts"]
        assert entry["restarted"] is True

    def test_rank_exit_with_policy_recovers(self, backend):
        plan = FaultPlan([FaultSpec(op="comm", nth=1, count=1, kind="rank_exit")])
        res = run_spmd(
            2, _killable_program, plan,
            backend=backend, timeout=10.0, restart_policy=quick_policy(),
        )
        assert res.returns == [0, 1]
        assert res.supervisor["restarts"] == 1

    def test_unsupervised_result_has_empty_record(self, backend):
        res = run_spmd(2, lambda comm: comm.rank, backend=backend, timeout=10.0)
        assert res.supervisor == {}


# ---------------------------------------------------------------------------
# Kill-and-auto-recover byte identity (the acceptance matrix)
# ---------------------------------------------------------------------------


class BoundaryKill(RankKilled):
    """Raised right after the manifest for the target pass hits disk —
    the worst honest crash point at a pass boundary. A one-arg
    ResilienceError, so it pickles home intact from forked ranks."""


def kill_after_pass(kill_at):
    real = CheckpointStore.save_pass

    def killing(self, job, algorithm, pass_index, total, store):
        manifest = real(self, job, algorithm, pass_index, total, store)
        if pass_index == kill_at:
            raise BoundaryKill(f"killed at pass {pass_index} boundary")
        return manifest

    return killing


@pytest.mark.parametrize("backend", available_backends())
@pytest.mark.parametrize("depth", [0, 2])
@pytest.mark.parametrize("algorithm", sorted(CONFIGS))
class TestKillAndAutoRecover:
    def test_boundary_kill_recovers_at_every_pass(
        self, algorithm, depth, backend, tmp_path
    ):
        """The supervised run relaunches from the just-written manifest:
        the re-run resumes *after* the killed boundary's pass, so the
        killing monkeypatch never re-fires."""
        recs = records_for(algorithm)
        expected = expected_bytes(recs)
        total = CONFIGS[algorithm][3]
        for kill_at in range(1, total + 1):
            with pytest.MonkeyPatch.context() as mp:
                mp.setattr(CheckpointStore, "save_pass", kill_after_pass(kill_at))
                res = run_sort(
                    algorithm, recs, depth, backend=backend,
                    workdir=tmp_path / f"w{kill_at}",
                    checkpoint_dir=tmp_path / f"ck{kill_at}",
                    watchdog_deadline=WATCHDOG,
                    restart_policy=quick_policy(),
                )
            assert res.output_records().tobytes() == expected, (
                f"{algorithm} depth={depth} {backend}: recovery from a kill "
                f"at pass {kill_at}'s boundary diverged"
            )
            assert res.supervisor["restarts"] >= 1
            assert res.supervisor["attempts"][0]["resumed_from_pass"] == kill_at
            res.release_durability()

    def test_midpass_sigkill_recovers(self, algorithm, depth, backend, tmp_path):
        """A rank really dies mid-pass (SIGKILL on the process backend)
        on its nth disk write; the run must still complete
        byte-identically within the same call."""
        recs = records_for(algorithm)
        expected = expected_bytes(recs)
        p = CONFIGS[algorithm][0]
        # Calibrate: total write-op checks seen by a clean run (global
        # count — the thread backend shares one plan across ranks).
        counting = FaultPlan()
        res = run_sort(
            algorithm, recs, depth, workdir=tmp_path / "cal",
            fault_plan=counting,
        )
        res.release_durability()
        writes = counting.snapshot()["ops"]["write"]
        for frac in (0.35, 0.85):
            nth = max(1, int(writes * frac))
            if backend == "process":
                # forked ranks count their own ops; scale to one rank's
                # share of the run
                nth = max(1, nth // p)
            plan = FaultPlan(
                [FaultSpec(op="write", nth=nth, count=1, kind="rank_kill")]
            )
            res = run_sort(
                algorithm, recs, depth, backend=backend,
                workdir=tmp_path / f"w{frac}",
                checkpoint_dir=tmp_path / f"ck{frac}",
                fault_plan=plan, watchdog_deadline=WATCHDOG,
                restart_policy=quick_policy(),
            )
            assert res.output_records().tobytes() == expected, (
                f"{algorithm} depth={depth} {backend}: recovery from a "
                f"mid-pass kill at write {nth} diverged"
            )
            assert res.supervisor["restarts"] >= 1
            assert plan.snapshot()["rank_kills"] >= 1
            res.release_durability()


class TestSupervisedRunWithoutCheckpoints:
    def test_restart_from_scratch_when_no_checkpoint_dir(self, tmp_path):
        recs = records_for("threaded")
        plan = FaultPlan([FaultSpec(op="write", nth=3, count=1, kind="rank_kill")])
        res = run_sort(
            "threaded", recs, 0, workdir=tmp_path / "w",
            fault_plan=plan, watchdog_deadline=WATCHDOG,
            restart_policy=quick_policy(),
        )
        assert res.output_records().tobytes() == expected_bytes(recs)
        assert res.supervisor["restarts"] == 1
        assert res.supervisor["attempts"][0]["resumed_from_pass"] == 0
        res.release_durability()

    def test_unsupervised_result_has_empty_record(self, tmp_path):
        recs = records_for("threaded")
        res = run_sort("threaded", recs, 0, workdir=tmp_path / "w")
        assert res.supervisor == {}
        res.release_durability()


# ---------------------------------------------------------------------------
# Interaction with the governor
# ---------------------------------------------------------------------------


class TestGovernorInteraction:
    def test_admission_charged_once_across_attempts(self, tmp_path):
        governor = JobGovernor(max_concurrent=1, max_queue=1)
        recs = records_for("threaded")
        plan = FaultPlan([FaultSpec(op="write", nth=3, count=1, kind="rank_kill")])
        res = run_sort(
            "threaded", recs, 0, workdir=tmp_path / "w",
            fault_plan=plan, watchdog_deadline=WATCHDOG,
            restart_policy=quick_policy(), governor=governor,
        )
        assert res.supervisor["restarts"] == 1
        snap = governor.snapshot()
        assert snap["admitted"] == 1  # the restart was not re-admitted
        assert snap["completed"] == 1
        assert snap["running"] == 0
        res.release_durability()

    def test_cancellation_is_fatal_and_leaks_nothing(self, tmp_path):
        recs = records_for("threaded")
        cancel = CancelToken(cancel_at_pass=1)
        with pytest.raises(CancelledError):
            run_sort(
                "threaded", recs, 0, workdir=tmp_path / "w",
                cancel=cancel, restart_policy=quick_policy(),
            )
        # conftest teardown asserts no leases/quarantines/threads leaked


# ---------------------------------------------------------------------------
# Satellites: quarantine revive, rank-kill plan hygiene, error pickling
# ---------------------------------------------------------------------------


class TestQuarantineRevive:
    def test_revive_clears_dead_state_but_stays_armed(self):
        q = DiskQuarantine()
        q.mark_dead(1)
        q.record_checksum_failure(0, 3)
        assert q in active_quarantines()
        assert q.revive() == [1]
        assert not q.is_dead(1)
        assert q.degraded_disks() == []
        assert q not in active_quarantines()
        # cumulative durability counters describe the whole run
        assert q.snapshot()["checksum_failures"] == 3
        # unlike release(), revive leaves the registry armed
        q.mark_dead(2)
        assert q in active_quarantines()
        q.release()

    def test_released_quarantine_stays_released_after_revive(self):
        q = DiskQuarantine()
        q.mark_dead(0)
        q.release()
        q.revive()
        q.mark_dead(1)
        assert q not in active_quarantines()
        q.release()


class TestRankKillFaultSpecs:
    def test_kill_kinds_require_finite_count(self):
        with pytest.raises(Exception, match="finite count"):
            FaultSpec(kind="rank_kill", count=None)
        with pytest.raises(Exception, match="finite count"):
            FaultSpec(kind="rank_exit", count=None)

    def test_thread_side_kill_raises_rank_killed(self):
        plan = FaultPlan([FaultSpec(op="read", nth=2, count=1, kind="rank_kill")])
        plan.check("read", "op 1")
        with pytest.raises(RankKilled, match="injected rank_kill"):
            plan.check("read", "op 2")
        # spent: the same plan never kills a relaunched attempt again
        for _ in range(20):
            plan.check("read", "later op")
        snap = plan.snapshot()
        assert snap["rank_kills"] == 1
        assert snap["fired_total"] == 1

    def test_reset_counters_rearms_kill_cells(self):
        plan = FaultPlan([FaultSpec(op="read", nth=1, count=1, kind="rank_kill")])
        with pytest.raises(RankKilled):
            plan.check("read")
        plan.reset_counters()
        assert plan.snapshot()["rank_kills"] == 0
        with pytest.raises(RankKilled):
            plan.check("read")

    def test_add_registers_kill_cell(self):
        plan = FaultPlan()
        plan.check("write")
        plan.add(FaultSpec(op="write", nth=2, count=1, kind="rank_kill"))
        with pytest.raises(RankKilled):
            plan.check("write")


class TestErrorPickling:
    def test_rank_killed_round_trips(self):
        exc = pickle.loads(pickle.dumps(RankKilled("injected rank_kill here")))
        assert isinstance(exc, RankKilled)
        assert "injected rank_kill" in str(exc)

    def test_watchdog_timeout_round_trips_with_stalled_ranks(self):
        original = WatchdogTimeout(
            2, 7.5, 1.0, stalled=[(2, 7.5), (0, 6.1), (1, 5.0)]
        )
        exc = pickle.loads(pickle.dumps(original))
        assert exc.rank == 2
        assert exc.stalled == [(2, 7.5), (0, 6.1), (1, 5.0)]
        assert "all stalled ranks" in str(exc)
        assert "0 (6.1s idle)" in str(exc)
