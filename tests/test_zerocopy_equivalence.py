"""End-to-end guarantees of the zero-copy data plane.

Two properties protect the refactor:

* **byte identity** — the sorted output is identical byte-for-byte
  whether seams copy (``REPRO_LEGACY_COPIES=1``) or move views, at every
  pipeline depth. Pooled buffers, ``readinto`` reads, and packed
  ``alltoallv`` views must be invisible to the data.
* **copy reduction** — the point of the exercise: the pooled plane must
  copy at least 2× fewer bytes than the legacy plane on the reference
  workload (the ISSUE's acceptance bar; measured ≈2.7×).

Both properties are checked on every transport backend: the process
backend's shared-memory alltoallv buffers and fork-copied data plane
must be exactly as invisible to the data as the thread backend's views.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import available_backends
from repro.cluster.config import ClusterConfig
from repro.membuf import get_pool
from repro.oocs.api import sort_out_of_core
from repro.records.format import RecordFormat
from repro.records.generators import generate

# (algorithm, n, buffer_records): smallest shapes where every algorithm
# is eligible and each pass still runs multiple rounds.
SHAPES = {
    "threaded": (8192, 512),
    "subblock": (16384, 1024),
    "m": (32768, 2048),
    "hybrid": (32768, 2048),
}


def _run(
    algorithm: str, legacy: bool, depth: int, monkeypatch,
    backend: str = "thread",
) -> bytes:
    n, buf = SHAPES[algorithm]
    fmt = RecordFormat("u8", 64)
    cluster = ClusterConfig(p=4, mem_per_proc=2**16)
    records = generate("uniform", fmt, n, seed=7)
    if legacy:
        monkeypatch.setenv("REPRO_LEGACY_COPIES", "1")
    else:
        monkeypatch.delenv("REPRO_LEGACY_COPIES", raising=False)
    result = sort_out_of_core(
        algorithm, records, cluster, fmt,
        buffer_records=buf, pipeline_depth=depth, backend=backend,
    )
    out = result.output.read_global(0, n).tobytes()
    result.output.delete()
    assert get_pool().outstanding() == 0, "pool lease leaked by the run"
    return out


@pytest.mark.parametrize("backend", available_backends())
@pytest.mark.parametrize("algorithm", sorted(SHAPES))
def test_legacy_and_pooled_outputs_byte_identical(
    algorithm, backend, monkeypatch
):
    # The cheapest thread shape sweeps the full depth set; the heavier
    # ones (and the process backend, which pays a fork per run) check
    # the synchronous and default-pipelined corners. The reference is
    # always the thread backend's legacy plane, so this also pins
    # cross-backend byte identity.
    full_sweep = algorithm == "threaded" and backend == "thread"
    depths = (0, 1, 2, 4) if full_sweep else (0, 2)
    reference = _run(algorithm, legacy=True, depth=0, monkeypatch=monkeypatch)
    for depth in depths:
        for legacy in (True, False):
            got = _run(algorithm, legacy=legacy, depth=depth,
                       monkeypatch=monkeypatch, backend=backend)
            assert got == reference, (
                f"{algorithm}: output differs at depth={depth} "
                f"legacy={legacy} backend={backend}"
            )


def test_pooled_plane_copies_at_least_2x_fewer_bytes(monkeypatch):
    n, buf = SHAPES["threaded"]
    fmt = RecordFormat("u8", 64)
    cluster = ClusterConfig(p=4, mem_per_proc=2**16)
    records = generate("uniform", fmt, n, seed=7)

    def copied(legacy: bool) -> int:
        if legacy:
            monkeypatch.setenv("REPRO_LEGACY_COPIES", "1")
        else:
            monkeypatch.delenv("REPRO_LEGACY_COPIES", raising=False)
        result = sort_out_of_core(
            "threaded", records, cluster, fmt,
            buffer_records=buf, pipeline_depth=2,
        )
        result.output.delete()
        return result.copy["bytes_copied"]

    legacy_bytes = copied(legacy=True)
    pooled_bytes = copied(legacy=False)
    assert pooled_bytes * 2 <= legacy_bytes, (
        f"pooled plane copied {pooled_bytes:,} B, legacy {legacy_bytes:,} B "
        f"— less than the required 2x reduction"
    )


def test_copy_accounting_surfaces_in_result(monkeypatch):
    monkeypatch.delenv("REPRO_LEGACY_COPIES", raising=False)
    n, buf = SHAPES["threaded"]
    fmt = RecordFormat("u8", 64)
    cluster = ClusterConfig(p=4, mem_per_proc=2**16)
    records = generate("uniform", fmt, n, seed=7)
    result = sort_out_of_core(
        "threaded", records, cluster, fmt,
        buffer_records=buf, pipeline_depth=2,
    )
    result.output.delete()
    copy = result.copy
    assert copy["bytes_zero_copy"] > 0
    assert copy["leases"] == copy["lease_returns"] > 0
    assert copy["pool_hits"] + copy["pool_misses"] >= copy["leases"]
    assert copy["peak_leases"] >= 1
    # The result feeds the experiment table without massaging.
    from repro.experiments.breakdown import copy_breakdown_table

    rows = copy_breakdown_table(result)
    assert {row["metric"] for row in rows} >= {
        "bytes copied", "bytes zero-copy", "pool hit rate %", "peak leases",
    }
    assert all(row["algorithm"] == "threaded" for row in rows)
