"""RankWatchdog: a hung world becomes a prompt structured SpmdError.

Every test here is wrapped in the conftest SIGALRM guard — the whole
point of the watchdog is that these scenarios *return* instead of
hanging, so a test that hangs is itself the failure.
"""

import threading
import time

import pytest

from repro.cluster.spmd import run_spmd
from repro.errors import SpmdError, WatchdogTimeout
from tests.conftest import alarm_timeout
from tests.test_failure_injection import assert_no_new_threads


class TestStuckRank:
    def test_blocked_receive_names_stuck_rank(self):
        """Rank 1 waits for a message nobody sends; siblings finish. The
        watchdog must name rank 1 and close the world so its receive
        unblocks — no leaked thread."""
        before = set(threading.enumerate())

        def program(comm):
            if comm.rank == 1:
                comm.recv(source=0, tag=7)  # never sent
            return comm.rank

        with alarm_timeout(30, "watchdog failed to abort a stuck world"):
            with pytest.raises(SpmdError) as err:
                run_spmd(3, program, watchdog_deadline=1.0)
        assert isinstance(err.value.cause, WatchdogTimeout)
        assert err.value.rank == 1
        assert err.value.cause.rank == 1
        assert err.value.cause.idle_s >= 1.0
        assert_no_new_threads(before)

    def test_wedged_rank_is_abandoned_not_waited_for(self):
        """A rank silent outside the comm layer entirely (no receive to
        unblock) is abandoned after the grace period; the caller still
        gets the structured error promptly."""
        release = threading.Event()

        def program(comm):
            if comm.rank == 0:
                release.wait(timeout=30)  # silent: no mailbox traffic
            return comm.rank

        try:
            start = time.monotonic()
            with alarm_timeout(30, "watchdog failed to abandon a wedged rank"):
                with pytest.raises(SpmdError) as err:
                    run_spmd(2, program, watchdog_deadline=1.0)
            elapsed = time.monotonic() - start
            assert isinstance(err.value.cause, WatchdogTimeout)
            assert err.value.rank == 0
            # deadline (1s) + poll + 2s grace + slack: well under the wait
            assert elapsed < 10.0
        finally:
            release.set()  # let the abandoned daemon thread exit

    def test_all_ranks_stuck_blames_lowest(self):
        def program(comm):
            comm.recv(source=(comm.rank + 1) % 2, tag=5)  # mutual deadlock

        with alarm_timeout(30, "watchdog failed on a deadlocked world"):
            with pytest.raises(SpmdError) as err:
                run_spmd(2, program, watchdog_deadline=1.0)
        assert isinstance(err.value.cause, WatchdogTimeout)
        assert err.value.rank == 0  # tie in stamps resolves to lowest rank

    def test_deadlocked_world_reports_all_stalled_ranks(self):
        """When several ranks are silent past the deadline, the error
        must carry all of them (id + idle seconds), not just the
        primary suspect — that's what makes a supervisor's restart log
        diagnosable."""

        def program(comm):
            comm.recv(source=(comm.rank + 1) % 3, tag=5)  # 3-cycle deadlock

        with alarm_timeout(30, "watchdog failed on a deadlocked world"):
            with pytest.raises(SpmdError) as err:
                run_spmd(3, program, watchdog_deadline=1.0)
        cause = err.value.cause
        assert isinstance(cause, WatchdogTimeout)
        assert sorted(rank for rank, _ in cause.stalled) == [0, 1, 2]
        assert all(idle >= 1.0 for _, idle in cause.stalled)
        # quietest first; the primary suspect is the first entry
        assert cause.stalled[0][0] == cause.rank
        assert "all stalled ranks" in str(cause)
        for rank in (0, 1, 2):
            assert f"{rank} (" in str(cause)

    def test_single_stalled_rank_keeps_terse_message(self):
        exc = WatchdogTimeout(1, 3.0, 1.0, stalled=[(1, 3.0)])
        assert "all stalled ranks" not in str(exc)
        assert exc.stalled == [(1, 3.0)]


class TestNoFalsePositives:
    def test_slow_but_active_run_never_trips(self):
        """Ranks chatting slower than the deadline but never silent for
        a full deadline must complete normally."""

        def program(comm):
            other = 1 - comm.rank
            for i in range(4):
                time.sleep(0.2)  # deadline is 0.8 — each op resets the clock
                comm.sendrecv(i, other, source=other, tag=i)
            return comm.rank

        with alarm_timeout(30, "active run tripped the watchdog"):
            res = run_spmd(2, program, watchdog_deadline=0.8)
        assert res.returns == [0, 1]

    def test_no_watchdog_without_deadline(self):
        before = set(threading.enumerate())
        res = run_spmd(2, lambda comm: comm.rank)
        assert res.returns == [0, 1]
        assert_no_new_threads(before)
        assert not any(
            t.name == "rank-watchdog" for t in threading.enumerate()
        )

    def test_watchdog_thread_stops_after_clean_run(self):
        before = set(threading.enumerate())
        res = run_spmd(2, lambda comm: comm.rank, watchdog_deadline=5.0)
        assert res.returns == [0, 1]
        assert_no_new_threads(before)


class TestGenuineFailureOutranksWatchdog:
    def test_raising_rank_beats_watchdog_verdict(self):
        """If a rank raises and another hangs, the genuine exception is
        the reported cause, not the watchdog's timeout."""

        def program(comm):
            if comm.rank == 1:
                raise ValueError("genuine failure")
            comm.recv(source=1, tag=3)  # unblocked by the shutdown

        with alarm_timeout(30, "mixed failure world hung"):
            with pytest.raises(SpmdError) as err:
                run_spmd(2, program, watchdog_deadline=2.0)
        assert err.value.rank == 1
        assert isinstance(err.value.cause, ValueError)
