"""Disk-full handling: fault-spec validation, retry classification, the
run governor's reclaim/degrade ladder, and the capacity accounting of
degraded-mode spare materializations.

ENOSPC is deliberately *not* a retryable fault — backing off cannot
conjure free space — so the path under test here is the
:class:`~repro.governor.RunGovernor` ladder instead: reclaim dead
scratch stores and retry the write once, else degrade the run and let
the error surface structurally, naming the disk.
"""

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.disks.virtual_disk import VirtualDisk, make_disk_array
from repro.durability import attach_durability
from repro.errors import DiskFullError, ResilienceError, SpmdError
from repro.experiments.breakdown import governance_breakdown_table
from repro.oocs.api import sort_out_of_core
from repro.records.format import RecordFormat
from repro.records.generators import generate
from repro.resilience import FaultPlan, FaultSpec
from repro.resilience.retry import RetryPolicy

FMT = RecordFormat("u8", 16)


def kill_disk(disk: VirtualDisk) -> None:
    """Destroy a disk's primary data (dot-dirs — parity, spare,
    checksums — live on 'other media') and declare it dead."""
    for path in disk.root.iterdir():
        if path.is_file():
            path.unlink()
    disk.quarantine.mark_dead(disk.disk_id)


def run_sort(records, depth=0, **kwargs):
    cluster = ClusterConfig(p=2, mem_per_proc=2**10)
    return sort_out_of_core(
        "threaded", records, cluster, FMT, buffer_records=128,
        pipeline_depth=depth, **kwargs,
    )


class TestFaultSpecValidation:
    def test_disk_full_must_target_write_side(self):
        FaultSpec(op="write", kind="disk_full")  # fine
        FaultSpec(op="any", kind="disk_full")  # fine
        with pytest.raises(ResilienceError, match="write-side"):
            FaultSpec(op="read", kind="disk_full")
        with pytest.raises(ResilienceError, match="write-side"):
            FaultSpec(op="comm", kind="disk_full")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ResilienceError, match="unknown fault kind"):
            FaultSpec(kind="meteor")

    def test_any_spec_skips_reads(self):
        """An op="any" disk_full rule must not fire on reads — reads
        never allocate space — and the skipped read must not consume
        the nth-write trigger either."""
        plan = FaultPlan(
            [FaultSpec(op="any", kind="disk_full", nth=1, transient=False)]
        )
        plan.check("read", disk_id=0)  # does not raise
        with pytest.raises(DiskFullError):
            plan.check("write", disk_id=0)

    def test_injected_error_names_the_disk(self):
        plan = FaultPlan(
            [FaultSpec(op="write", kind="disk_full", nth=1, transient=False)]
        )
        with pytest.raises(DiskFullError, match="on disk 3"):
            plan.check("write", where="on disk 3", disk_id=3)


class TestRetryClassification:
    def test_disk_full_is_never_retryable(self):
        assert not RetryPolicy.retryable(DiskFullError("enospc"))

    def test_transient_flag_does_not_override(self):
        """Even a fault plan that (mis)labels ENOSPC transient must not
        burn the backoff budget: space does not free itself."""
        exc = DiskFullError("enospc")
        exc.transient = True
        assert not RetryPolicy.retryable(exc)

    def test_real_capacity_overflow_is_not_retried(self, tmp_path):
        disk = VirtualDisk(tmp_path / "d0", capacity_bytes=64)
        disk.retry_policy = RetryPolicy(max_attempts=5, base_delay_s=0.0)
        with pytest.raises(DiskFullError, match="disk 0 full"):
            disk.write_at("obj", 0, b"x" * 100)
        assert disk.stats.snapshot()["write_retries"] == 0


@pytest.mark.parametrize("depth", [0, 2])
class TestReclaimLadder:
    def test_reclaim_completes_byte_identically(self, depth):
        """ENOSPC in the last pass, where earlier intermediates are dead
        scratch: the governor reclaims them, retries the write once, and
        the run completes byte-identically with the ladder metered."""
        records = generate("uniform", FMT, 512, seed=7)
        clean = run_sort(records, depth)
        expected = clean.output.read_all().tobytes()
        writes_per_pass = [io["writes"] for io in clean.io_per_pass]
        clean.output.delete()

        nth = sum(writes_per_pass[:-1]) + max(2, writes_per_pass[-1] // 2)
        plan = FaultPlan(
            [FaultSpec(op="write", kind="disk_full", nth=nth, count=1,
                       transient=False)]
        )
        res = run_sort(records, depth, fault_plan=plan)
        assert res.output.read_all().tobytes() == expected
        gov = res.governor
        assert gov["disk_full_events"] == 1
        assert gov["scratch_reclaims"] == 1
        assert gov["reclaimed_bytes"] > 0
        assert not gov.get("degraded")
        rows = {r["metric"]: r for r in governance_breakdown_table(res)}
        assert rows["disk-full events"]["value"] == 1
        assert "reclaims" in rows["disk-full events"]["note"]
        res.output.delete()

    def test_nothing_to_reclaim_fails_naming_the_disk(self, depth):
        """The very first write fails: no dead scratch exists yet, so
        the ladder degrades and the error must surface structurally with
        the failing disk named."""
        records = generate("uniform", FMT, 512, seed=7)
        plan = FaultPlan(
            [FaultSpec(op="write", kind="disk_full", nth=1, count=1,
                       transient=False, disk=0)]
        )
        with pytest.raises(SpmdError) as err:
            run_sort(records, depth, fault_plan=plan)
        assert isinstance(err.value.cause, DiskFullError)
        assert "disk 0" in str(err.value.cause)


class TestSpareCapacityAccounting:
    """Degraded-mode regression: a reconstructed spare copy occupies
    real capacity, so near-full disks must fail structurally *before*
    spare bytes land instead of silently exceeding the limit."""

    PAYLOAD = bytes(range(256)) * 4  # 1024 B

    def _array(self, tmp_path, capacity):
        disks = make_disk_array(tmp_path, 2, capacity_bytes=capacity)
        quarantine, layer = attach_durability(disks, parity=True)
        return disks, quarantine

    def test_spare_counts_toward_used_bytes(self, tmp_path):
        disks, quarantine, = self._array(tmp_path, capacity=None)
        disks[0].write_at("obj", 0, self.PAYLOAD)
        assert disks[0].used_bytes() == len(self.PAYLOAD)
        kill_disk(disks[0])
        assert disks[0].read_at("obj", 0, len(self.PAYLOAD)) == self.PAYLOAD
        # catalog entry + its spare materialization both occupy capacity
        assert disks[0].used_bytes() == 2 * len(self.PAYLOAD)
        quarantine.release()

    def test_reconstruction_near_capacity_fails_structurally(self, tmp_path):
        # room for the object but not for a second (spare) copy
        disks, quarantine = self._array(
            tmp_path, capacity=len(self.PAYLOAD) + 64
        )
        disks[0].write_at("obj", 0, self.PAYLOAD)
        kill_disk(disks[0])
        with pytest.raises(DiskFullError, match="cannot materialize spare"):
            disks[0].read_at("obj", 0, len(self.PAYLOAD))
        quarantine.release()

    def test_reserve_raises_before_any_spare_bytes_land(self, tmp_path):
        disks, quarantine = self._array(
            tmp_path, capacity=len(self.PAYLOAD) + 64
        )
        disks[0].write_at("obj", 0, self.PAYLOAD)
        kill_disk(disks[0])
        with pytest.raises(DiskFullError):
            disks[0].read_at("obj", 0, len(self.PAYLOAD))
        spare = disks[0].root / ".spare" / "obj"
        assert not spare.exists()
        assert disks[0].used_bytes() == len(self.PAYLOAD)  # nothing reserved
        quarantine.release()

    def test_degraded_write_growth_is_capacity_checked(self, tmp_path):
        # 2 copies fit (reconstruction succeeds) but growing the object
        # in degraded mode would need a third portion: must raise.
        b = len(self.PAYLOAD)
        disks, quarantine = self._array(tmp_path, capacity=2 * b + 64)
        disks[0].write_at("obj", 0, self.PAYLOAD)
        kill_disk(disks[0])
        assert disks[0].read_at("obj", 0, b) == self.PAYLOAD
        with pytest.raises(DiskFullError, match="disk 0 full"):
            disks[0].write_at("obj", b, self.PAYLOAD)
        quarantine.release()

    def test_degraded_write_within_capacity_succeeds(self, tmp_path):
        b = len(self.PAYLOAD)
        disks, quarantine = self._array(tmp_path, capacity=4 * b)
        disks[0].write_at("obj", 0, self.PAYLOAD)
        kill_disk(disks[0])
        disks[0].write_at("obj", b, self.PAYLOAD)
        got = disks[0].read_at("obj", 0, 2 * b)
        assert got == self.PAYLOAD * 2
        assert quarantine.snapshot()["spare_writes"] == 1
        quarantine.release()

    def test_delete_releases_spare_reservation(self, tmp_path):
        disks, quarantine = self._array(tmp_path, capacity=None)
        disks[0].write_at("obj", 0, self.PAYLOAD)
        kill_disk(disks[0])
        disks[0].read_at("obj", 0, len(self.PAYLOAD))
        assert disks[0].used_bytes() == 2 * len(self.PAYLOAD)
        disks[0].delete("obj")
        assert disks[0].used_bytes() == 0
        quarantine.release()
