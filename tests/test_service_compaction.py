"""Boot-time journal compaction: the daemon's recovery rewrites a grown
journal down to the minimal legal history (ROADMAP: the compact()
machinery existed but nothing called it until now)."""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest

from repro.service.daemon import SortService
from repro.service.jobs import replay_jobs
from repro.service.journal import JobJournal


@pytest.fixture
def service_root():
    with tempfile.TemporaryDirectory(prefix="svcc-", dir="/tmp") as root:
        yield Path(root)


def _grown_journal(root: Path, jobs: int = 8) -> tuple[int, int]:
    """A journal with ``jobs`` completed lifecycles (4 events each plus
    noise ``checkpointed`` progress); returns (events, bytes)."""
    journal = JobJournal(root / "journal.log")
    for k in range(jobs):
        job = f"j{k:06d}"
        journal.append("submitted", job=job, tenant="acme", spec={"n": 64})
        journal.append("admitted", job=job)
        journal.append("running", job=job)
        for p in (1, 2, 3):
            journal.append("checkpointed", job=job, **{"pass": p})
        journal.append("done", job=job, result={"passes": 3})
    events, _ = journal.replay()
    size = journal.size_bytes()
    journal.close()
    return len(events), size


def _recovered_service(root: Path, **kwargs) -> SortService:
    service = SortService(root, workers=1, **kwargs)
    service._recover()
    return service


def test_boot_compaction_fires_over_the_byte_threshold(service_root):
    events_before, bytes_before = _grown_journal(service_root)
    before_jobs, _ = replay_jobs(JobJournal(service_root / "journal.log").replay()[0])
    service = _recovered_service(
        service_root, compact_min_bytes=1, compact_min_events=None
    )
    try:
        summary = service._recovered["compacted"]
        assert summary is not None
        assert summary["events_before"] == events_before
        assert summary["events_after"] < events_before
        assert summary["bytes_after"] < bytes_before
        # the rewritten journal replays to the identical job table ...
        events, torn = service.journal.replay()
        assert torn == 0
        after_jobs, service_events = replay_jobs(events)
        assert {j: r.state for j, r in after_jobs.items()} == {
            j: r.state for j, r in before_jobs.items()
        }
        # ... and the rewrite journaled itself as a service event
        assert any(e["kind"] == "compacted" for e in service_events)
    finally:
        service.journal.close()


def test_boot_compaction_fires_over_the_event_threshold(service_root):
    _grown_journal(service_root)
    service = _recovered_service(
        service_root, compact_min_bytes=None, compact_min_events=10
    )
    try:
        assert service._recovered["compacted"] is not None
    finally:
        service.journal.close()


def test_boot_compaction_respects_thresholds(service_root):
    """Under both thresholds nothing is rewritten."""
    events_before, bytes_before = _grown_journal(service_root)
    service = _recovered_service(
        service_root,
        compact_min_bytes=bytes_before + 1,
        compact_min_events=events_before + 1,
    )
    try:
        assert service._recovered["compacted"] is None
        assert service.journal.size_bytes() == bytes_before
    finally:
        service.journal.close()


def test_boot_compaction_disabled_with_none(service_root):
    _grown_journal(service_root)
    service = _recovered_service(
        service_root, compact_min_bytes=None, compact_min_events=None
    )
    try:
        assert service._recovered["compacted"] is None
    finally:
        service.journal.close()


def test_boot_compaction_is_idempotent(service_root):
    """A second boot over an already-minimal journal must not rewrite
    again just to strip its own ``compacted`` marker."""
    _grown_journal(service_root)
    first = _recovered_service(
        service_root, compact_min_bytes=1, compact_min_events=None
    )
    first.journal.close()
    assert first._recovered["compacted"] is not None
    second = _recovered_service(
        service_root, compact_min_bytes=1, compact_min_events=None
    )
    try:
        assert second._recovered["compacted"] is None
    finally:
        second.journal.close()


def test_compaction_preserves_unfinished_jobs(service_root):
    """Non-terminal jobs survive compaction and are still requeued."""
    journal = JobJournal(service_root / "journal.log")
    for k in range(6):
        job = f"j{k:06d}"
        journal.append("submitted", job=job, tenant="acme", spec={"n": 64})
        journal.append("admitted", job=job)
        journal.append("running", job=job)
        for p in (1, 2):
            journal.append("checkpointed", job=job, **{"pass": p})
        journal.append("done", job=job, result={"passes": 3})
    journal.append("submitted", job="j000099", tenant="acme", spec={"n": 8})
    journal.close()
    service = _recovered_service(
        service_root, compact_min_bytes=1, compact_min_events=None
    )
    try:
        assert service._recovered["compacted"] is not None
        assert "j000099" in service._jobs
        assert "j000099" in service._pending
        assert service._jobs["j000099"].state == "admitted"
    finally:
        service.journal.close()


def test_serve_cli_exposes_compaction_flags():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["serve", "--root", "/tmp/x", "--compact-bytes", "0",
         "--compact-events", "512"]
    )
    assert args.compact_bytes == 0
    assert args.compact_events == 512
