"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for cmd in ("figure2", "report", "bounds", "crossover", "msgcount",
                    "coverage", "sort"):
            args = parser.parse_args([cmd] if cmd != "sort" else ["sort"])
            assert args.command == cmd

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sort_defaults(self):
        args = build_parser().parse_args(["sort"])
        assert args.algorithm == "threaded"
        assert args.records == 8192
        assert args.buffer == 512


class TestCommands:
    def test_figure2(self, capsys):
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "M-columnsort" in out and "Baseline I/O" in out

    def test_tables(self, capsys):
        for cmd, marker in (
            ("bounds", "subblock"),
            ("crossover", "32·P^10" if False else "crossover"),
            ("msgcount", "messages/round"),
            ("coverage", "eligible sizes"),
        ):
            assert main([cmd]) == 0
            assert marker in capsys.readouterr().out

    def test_sort_threaded(self, capsys, tmp_path):
        rc = main([
            "sort", "--records", "2048", "--buffer", "256", "-p", "2",
            "--workdir", str(tmp_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "verified" in out
        assert "3 passes" in out

    def test_sort_subblock_below_basic_bound(self, capsys, tmp_path):
        rc = main([
            "sort", "--algorithm", "subblock", "--records", "4096",
            "--buffer", "256", "-p", "4", "--workload", "duplicates",
            "--workdir", str(tmp_path),
        ])
        assert rc == 0
        assert "4 passes" in capsys.readouterr().out

    def test_sort_m(self, capsys, tmp_path):
        rc = main([
            "sort", "--algorithm", "m", "--records", "16384",
            "--buffer", "256", "-p", "4", "--workdir", str(tmp_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "3 passes" in out and "network" in out


class TestJsonOutput:
    def test_sort_json_emits_result_schema(self, capsys, tmp_path):
        import json

        rc = main([
            "sort", "--records", "2048", "--buffer", "256", "-p", "2",
            "--workdir", str(tmp_path), "--json",
        ])
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["schema"] == "repro.sort-result/1"
        assert summary["verified"] is True
        assert summary["n"] == 2048
        assert summary["passes"] == 3
        assert len(summary["output_digest"]) == 64
        assert summary["digest_algo"]

    def test_sort_json_digest_is_deterministic(self, capsys, tmp_path):
        import json

        digests = []
        for sub in ("a", "b"):
            rc = main([
                "sort", "--records", "2048", "--buffer", "256", "-p", "2",
                "--workdir", str(tmp_path / sub), "--json",
            ])
            assert rc == 0
            digests.append(json.loads(capsys.readouterr().out)["output_digest"])
        assert digests[0] == digests[1]


class TestCheckpointFlags:
    def test_sort_prunes_checkpoints_by_default(self, capsys, tmp_path):
        ckdir = tmp_path / "ck"
        rc = main([
            "sort", "--records", "2048", "--buffer", "256", "-p", "2",
            "--workdir", str(tmp_path / "w"), "--checkpoint-dir", str(ckdir),
        ])
        assert rc == 0
        assert not ckdir.exists()

    def test_keep_checkpoints_flag(self, capsys, tmp_path):
        ckdir = tmp_path / "ck"
        rc = main([
            "sort", "--records", "2048", "--buffer", "256", "-p", "2",
            "--workdir", str(tmp_path / "w"), "--checkpoint-dir", str(ckdir),
            "--keep-checkpoints",
        ])
        assert rc == 0
        assert list(ckdir.glob("pass_*.json"))


class TestServiceCommands:
    def test_serve_parser(self):
        args = build_parser().parse_args([
            "serve", "--root", "/tmp/x", "--workers", "3",
            "--tenant", "vip=10:4:32", "--tenant", "batch=0",
        ])
        assert args.workers == 3
        tenants = dict(args.tenant)
        assert tenants["vip"].priority == 10
        assert tenants["vip"].max_running == 4
        assert tenants["vip"].max_queued == 32
        assert tenants["batch"].priority == 0

    def test_serve_rejects_bad_tenant_spec(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--root", "/tmp/x",
                                       "--tenant", "no-equals-sign"])

    def test_client_parser(self):
        args = build_parser().parse_args([
            "client", "submit", "--socket", "/tmp/s.sock",
            "--spec", '{"records": 4096}', "--wait",
        ])
        assert args.op == "submit" and args.wait

    def test_client_requires_job_for_status(self, capsys):
        rc = main(["client", "status", "--socket", "/tmp/nonexistent.sock"])
        assert rc == 2
        assert "--job is required" in capsys.readouterr().err

    def test_client_unreachable_daemon_is_structured_error(self, capsys):
        rc = main([
            "client", "health", "--socket", "/tmp/definitely-not-there.sock",
            "--retries", "0", "--timeout", "1",
        ])
        assert rc == 1
        assert "unreachable" in capsys.readouterr().err

    def test_serve_and_client_round_trip(self, capsys):
        import json
        import tempfile
        import threading

        from repro.service import SortService

        with tempfile.TemporaryDirectory(prefix="svc-", dir="/tmp") as root:
            service = SortService(root, workers=1)
            service.start()
            try:
                sock = str(service.socket_path)
                rc = main([
                    "client", "submit", "--socket", sock,
                    "--spec", '{"records": 4096, "buffer": 512}', "--wait",
                ])
                assert rc == 0
                final = json.loads(capsys.readouterr().out)
                assert final["state"] == "done"
                assert final["result"]["schema"] == "repro.sort-result/1"
                rc = main(["client", "health", "--socket", sock])
                assert rc == 0
                health = json.loads(capsys.readouterr().out)
                assert health["jobs"] == {"done": 1}
            finally:
                service.stop()
