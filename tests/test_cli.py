"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for cmd in ("figure2", "report", "bounds", "crossover", "msgcount",
                    "coverage", "sort"):
            args = parser.parse_args([cmd] if cmd != "sort" else ["sort"])
            assert args.command == cmd

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sort_defaults(self):
        args = build_parser().parse_args(["sort"])
        assert args.algorithm == "threaded"
        assert args.records == 8192
        assert args.buffer == 512


class TestCommands:
    def test_figure2(self, capsys):
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "M-columnsort" in out and "Baseline I/O" in out

    def test_tables(self, capsys):
        for cmd, marker in (
            ("bounds", "subblock"),
            ("crossover", "32·P^10" if False else "crossover"),
            ("msgcount", "messages/round"),
            ("coverage", "eligible sizes"),
        ):
            assert main([cmd]) == 0
            assert marker in capsys.readouterr().out

    def test_sort_threaded(self, capsys, tmp_path):
        rc = main([
            "sort", "--records", "2048", "--buffer", "256", "-p", "2",
            "--workdir", str(tmp_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "verified" in out
        assert "3 passes" in out

    def test_sort_subblock_below_basic_bound(self, capsys, tmp_path):
        rc = main([
            "sort", "--algorithm", "subblock", "--records", "4096",
            "--buffer", "256", "-p", "4", "--workload", "duplicates",
            "--workdir", str(tmp_path),
        ])
        assert rc == 0
        assert "4 passes" in capsys.readouterr().out

    def test_sort_m(self, capsys, tmp_path):
        rc = main([
            "sort", "--algorithm", "m", "--records", "16384",
            "--buffer", "256", "-p", "4", "--workdir", str(tmp_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "3 passes" in out and "network" in out
