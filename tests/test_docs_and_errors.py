"""Documentation executability (doctests, examples) and the error
hierarchy contract."""

import doctest
import runpy
import sys
from pathlib import Path

import pytest

import repro.bounds.analysis
import repro.bounds.restrictions
import repro.cluster.config
import repro.columnsort.validation
import repro.disks.pdm
import repro.matrix.bits
import repro.oocs.api
import repro.records.format
import repro.records.generators
import repro.records.keys
from repro.errors import (
    CommError,
    ConfigError,
    DimensionError,
    DiskError,
    DiskFullError,
    ProblemSizeError,
    ReproError,
    SpmdError,
    VerificationError,
)

DOCTEST_MODULES = [
    repro.matrix.bits,
    repro.records.keys,
    repro.records.format,
    repro.records.generators,
    repro.columnsort.validation,
    repro.cluster.config,
    repro.disks.pdm,
    repro.bounds.restrictions,
    repro.bounds.analysis,
    repro.oocs.api,
]


@pytest.mark.parametrize(
    "module", DOCTEST_MODULES, ids=lambda m: m.__name__
)
def test_doctests(module):
    """Every usage example in the docstrings actually runs."""
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"


EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py"),
    key=lambda path: path.name,
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda s: s.stem)
def test_examples_run_clean(script, capsys, monkeypatch):
    """Every example script executes end to end (they are all
    laptop-scale by construction)."""
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"
    assert "Traceback" not in out


class TestErrorHierarchy:
    def test_everything_is_repro_error(self):
        for exc in (
            ConfigError, DimensionError, ProblemSizeError, CommError,
            DiskError, DiskFullError, VerificationError,
        ):
            assert issubclass(exc, ReproError)

    def test_stdlib_compatibility(self):
        """Callers can catch with the natural stdlib classes too."""
        assert issubclass(DimensionError, ValueError)
        assert issubclass(ConfigError, ValueError)
        assert issubclass(DiskError, IOError)
        assert issubclass(CommError, RuntimeError)
        assert issubclass(VerificationError, AssertionError)

    def test_problem_size_error_payload(self):
        err = ProblemSizeError(n=100, bound=50, algorithm="threaded")
        assert err.n == 100 and err.bound == 50
        assert "threaded" in str(err)
        assert isinstance(err, ConfigError)

    def test_spmd_error_payload(self):
        cause = ValueError("inner")
        err = SpmdError(3, cause)
        assert err.rank == 3 and err.cause is cause
        assert "rank 3" in str(err)

    def test_one_except_catches_all(self):
        from repro.cluster.config import ClusterConfig

        with pytest.raises(ReproError):
            ClusterConfig(p=3)
