"""Cooperative cancellation: token semantics, structured unwinding of
every pass program, and byte-identical resume after a cancel.

The cancel-then-resume matrix mirrors the kill-and-resume checkpoint
tests, but the interruption is a :class:`~repro.governor.CancelToken`
instead of a simulated crash: the run must stop with a *bare*
:class:`~repro.errors.Cancellation` (not an ``SpmdError`` wrapper),
leak no pool leases / pipeline threads / quarantines (the conftest
teardown asserts all three), and leave the last pass-boundary
checkpoint valid.
"""

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.config import ClusterConfig
from repro.errors import (
    Cancellation,
    CancelledError,
    ConfigError,
    DeadlineExceeded,
    SpmdError,
)
from repro.governor import CancelToken, maybe_check, maybe_sleep
from repro.membuf import get_pool
from repro.oocs.api import run_baseline_io, sort_out_of_core
from repro.records.format import RecordFormat
from repro.records.generators import generate

FMT = RecordFormat("u8", 16)

#: program → (p, buffer_records, s, total passes, striped input?)
CONFIGS = {
    "threaded": (2, 128, 4, 3, False),
    "subblock": (2, 128, 4, 4, False),
    "m": (2, 64, 4, 3, True),
    "hybrid": (2, 64, 4, 4, True),
    "baseline-io": (2, 128, 4, 3, False),
}

PROGRAMS = sorted(CONFIGS)


class PollCancelToken(CancelToken):
    """Cancels itself on its nth ``cancelled()`` poll — a deterministic
    stand-in for an operator cancel arriving mid-pass at an arbitrary
    seam (disk attempt, pipeline wait, mailbox slice)."""

    def __init__(self, nth=None):
        super().__init__()
        self.nth = nth
        self.polls = 0
        self._poll_lock = threading.Lock()

    def cancelled(self):
        with self._poll_lock:
            self.polls += 1
            hit = self.nth is not None and self.polls == self.nth
        if hit:
            self.cancel(f"poll #{self.nth}")
        return super().cancelled()


def records_for(program):
    p, buf, s, _, striped = CONFIGS[program]
    n = p * buf * s if striped else buf * s
    return generate("uniform", FMT, n, seed=7)


def run_program(program, records, depth, **kwargs):
    p, buf, _, _, _ = CONFIGS[program]
    cluster = ClusterConfig(p=p, mem_per_proc=2**10)
    if program == "baseline-io":
        return run_baseline_io(
            records, cluster, FMT, buffer_records=buf,
            pipeline_depth=depth, **kwargs,
        )
    return sort_out_of_core(
        program, records, cluster, FMT, buffer_records=buf,
        pipeline_depth=depth, **kwargs,
    )


def output_bytes(res):
    out = res.output
    if hasattr(out, "read_all"):
        return out.read_all().tobytes()
    return out.to_records().tobytes()


class TestCancelToken:
    def test_fresh_token_is_quiet(self):
        token = CancelToken()
        assert not token.cancelled()
        token.check()  # does not raise
        assert token.checks == 1
        assert token.remaining_s() is None

    def test_cancel_is_idempotent_first_reason_wins(self):
        token = CancelToken()
        token.cancel("first")
        token.cancel("second")
        exc = token.exception()
        assert isinstance(exc, CancelledError)
        assert exc.reason == "first"
        with pytest.raises(CancelledError, match="first"):
            token.check()

    def test_deadline_flips_lazily(self):
        token = CancelToken(deadline_s=0.01)
        time.sleep(0.02)
        assert token.cancelled()
        assert token.remaining_s() == 0.0
        with pytest.raises(DeadlineExceeded) as err:
            token.check()
        assert err.value.deadline_s == 0.01

    def test_deadline_must_be_positive(self):
        with pytest.raises(ValueError):
            CancelToken(deadline_s=0.0)

    def test_cancel_after_checks_trigger(self):
        token = CancelToken(cancel_after_checks=3)
        token.check()
        token.check()
        with pytest.raises(CancelledError, match="after 3 checks"):
            token.check()

    def test_pass_boundary_trigger(self):
        token = CancelToken(cancel_at_pass=2)
        token.pass_boundary(1)
        assert not token.cancelled()
        token.pass_boundary(2)
        assert token.cancelled()
        with pytest.raises(CancelledError, match="boundary 2"):
            token.check()

    def test_sleep_wakes_early_on_cancel(self):
        token = CancelToken()
        timer = threading.Timer(0.05, token.cancel)
        timer.start()
        t0 = time.monotonic()
        with pytest.raises(CancelledError):
            token.sleep(10.0)
        assert time.monotonic() - t0 < 5.0
        timer.join()

    def test_maybe_helpers_accept_none(self):
        maybe_check(None)
        maybe_sleep(None, 0.0)
        token = CancelToken()
        token.cancel()
        with pytest.raises(CancelledError):
            maybe_check(token)
        with pytest.raises(CancelledError):
            maybe_sleep(token, 0.01)


class TestApiValidation:
    def test_cancel_and_deadline_are_exclusive(self):
        records = records_for("threaded")
        cluster = ClusterConfig(p=2, mem_per_proc=2**10)
        with pytest.raises(ConfigError, match="not both"):
            sort_out_of_core(
                "threaded", records, cluster, FMT, buffer_records=128,
                cancel=CancelToken(), deadline_s=5.0,
            )

    def test_expired_deadline_raises_structured(self):
        records = records_for("threaded")
        cluster = ClusterConfig(p=2, mem_per_proc=2**10)
        with pytest.raises(DeadlineExceeded):
            sort_out_of_core(
                "threaded", records, cluster, FMT, buffer_records=128,
                deadline_s=1e-6,
            )


class TestStructuredUnwind:
    def test_cancellation_is_reraised_bare_not_wrapped(self):
        """A cancelled run raises CancelledError itself — callers catch
        Cancellation, not SpmdError-with-a-cause."""
        records = records_for("threaded")
        token = CancelToken(cancel_at_pass=1)
        try:
            run_program("threaded", records, 2, cancel=token)
        except Cancellation as exc:
            assert isinstance(exc, CancelledError)
            assert not isinstance(exc, SpmdError)
        else:
            pytest.fail("cancelled run did not raise")

    def test_governor_counters_report_cancel_checks(self):
        records = records_for("threaded")
        token = CancelToken()
        res = run_program("threaded", records, 0, cancel=token)
        assert res.governor["cancel_checks"] == token.checks > 0
        assert res.governor["deadline_s"] is None
        res.output.delete()


@pytest.mark.parametrize("depth", [0, 2])
@pytest.mark.parametrize("program", PROGRAMS)
class TestCancelThenResume:
    def test_boundary_cancel_resumes_byte_identical(
        self, program, depth, tmp_path
    ):
        """Cancel at every pass boundary; resume must reproduce the
        uninterrupted output byte for byte."""
        records = records_for(program)
        expected = output_bytes(run_program(program, records, depth))
        total = CONFIGS[program][3]

        for boundary in range(1, total + 1):
            workdir = tmp_path / f"w{boundary}"
            ckdir = tmp_path / f"ck{boundary}"
            token = CancelToken(cancel_at_pass=boundary)
            with pytest.raises(Cancellation):
                run_program(
                    program, records, depth,
                    cancel=token, workdir=workdir, checkpoint_dir=ckdir,
                )
            # the checkpoint of the completed pass survived the cancel
            assert len(list(ckdir.glob("pass_*.json"))) == boundary
            resumed = run_program(
                program, records, depth,
                workdir=workdir, checkpoint_dir=ckdir, resume=True,
            )
            assert output_bytes(resumed) == expected, (
                f"{program} depth={depth}: resume after boundary "
                f"{boundary} diverged"
            )
            resumed.output.delete()

    def test_midpass_cancel_resumes_byte_identical(
        self, program, depth, tmp_path
    ):
        """Cancel mid-pass (on the nth poll of any seam); the run must
        unwind promptly and resume byte-identically from the last
        completed boundary."""
        records = records_for(program)
        expected = output_bytes(run_program(program, records, depth))
        probe = PollCancelToken()
        run_program(program, records, depth, cancel=probe).output.delete()

        workdir = tmp_path / "w"
        ckdir = tmp_path / "ck"
        token = PollCancelToken(nth=max(2, probe.polls // 2))
        t0 = time.monotonic()
        with pytest.raises(Cancellation):
            run_program(
                program, records, depth,
                cancel=token, workdir=workdir, checkpoint_dir=ckdir,
            )
        assert time.monotonic() - t0 < 30.0  # prompt, not a hang
        resumed = run_program(
            program, records, depth,
            workdir=workdir, checkpoint_dir=ckdir, resume=True,
        )
        assert output_bytes(resumed) == expected
        resumed.output.delete()


class TestCancellationNeverLeaks:
    @settings(max_examples=12, deadline=None)
    @given(nth=st.integers(min_value=2, max_value=600))
    def test_cancel_at_any_poll_leaks_nothing(self, nth):
        """Property: wherever a cancel lands — any poll of any seam, or
        after the run already finished — no pool lease, pipeline worker
        thread, or quarantine registration survives the unwind. (The
        conftest teardown re-asserts the same invariants after the
        whole test.)"""
        records = records_for("threaded")
        token = PollCancelToken(nth=nth)
        try:
            res = run_program("threaded", records, 2, cancel=token)
        except Cancellation:
            pass
        else:
            res.output.delete()
        assert get_pool().outstanding() == 0
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            lingering = [
                t.name for t in threading.enumerate()
                if t.name.startswith("pipeline-")
            ]
            if not lingering:
                break
            time.sleep(0.02)
        assert lingering == []
        from repro.resilience import active_quarantines

        assert not active_quarantines()
