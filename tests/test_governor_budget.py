"""Buffer-pool byte budgets: held-byte accounting, backpressure,
eviction, structured failure, and the adaptive depth downshift.

The invariant under test is *peak tracked bytes never exceed the
budget*: a fresh tracked allocation first evicts idle freelist arrays,
then blocks until other leases are recycled, and only then raises
:class:`~repro.errors.BudgetExceeded` — so a budgeted run trades
latency for memory instead of overshooting.
"""

import threading
import time

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.errors import BudgetExceeded
from repro.governor import PRESSURE_STALLS, RunGovernor
from repro.membuf import get_pool
from repro.membuf.pool import BufferPool
from repro.oocs.api import sort_out_of_core
from repro.pipeline import SYNCHRONOUS, PipelinePlan
from repro.records.format import RecordFormat
from repro.records.generators import generate

FMT = RecordFormat("u8", 64)


class TestHeldAccounting:
    def test_lease_and_recycle_round_trip(self):
        pool = BufferPool()
        arr = pool.lease("u8", 100)
        assert pool.held_bytes() == 800
        pool.recycle(arr)
        assert pool.held_bytes() == 800  # moved to the freelist, still held
        again = pool.lease("u8", 100)
        assert again is arr  # freelist hit
        assert pool.held_bytes() == 800
        pool.recycle(again)

    def test_grab_transfers_ownership_out(self):
        pool = BufferPool()
        arr = pool.lease("u8", 64)
        pool.recycle(arr)
        assert pool.held_bytes() == 512
        grabbed = pool.grab("u8", 64)
        assert grabbed is arr
        assert pool.held_bytes() == 0  # the bytes left with the caller

    def test_fresh_grab_is_never_charged(self):
        pool = BufferPool(budget_bytes=16)
        arr = pool.grab("u8", 1024)  # far over budget: allowed, untracked
        assert arr.nbytes == 8192
        assert pool.held_bytes() == 0

    def test_adopting_an_untracked_array_respects_budget(self):
        pool = BufferPool(budget_bytes=1024)
        assert pool.recycle(np.empty(64, dtype="u8"))  # 512 B (u8 = uint64)
        assert pool.held_bytes() == 512
        # adoption that would overshoot is declined, not blocked
        assert not pool.recycle(np.empty(2048, dtype="u8"))
        assert pool.held_bytes() == 512

    def test_forget_leases_returns_the_bytes(self):
        pool = BufferPool()
        pool.lease("u8", 100)
        pool.lease("u8", 200)
        assert pool.held_bytes() == 2400
        assert pool.forget_leases() == 2
        assert pool.held_bytes() == 0

    def test_clear_empties_everything(self):
        pool = BufferPool()
        keep = pool.lease("u8", 10)
        pool.recycle(pool.lease("u8", 20))
        assert pool.clear() == 1
        assert pool.held_bytes() == 0
        assert pool.free_buffers() == 0
        del keep


class TestBudgetEnforcement:
    def test_eviction_makes_room_before_blocking(self):
        pool = BufferPool(budget_bytes=1000)
        idle = pool.lease("u1", 900)
        pool.recycle(idle)  # 900 idle bytes on the freelist
        arr = pool.lease("u1", 800)  # must evict the idle array, not stall
        snap = pool.budget_snapshot()
        assert snap["budget_evictions"] == 1
        assert snap["budget_stalls"] == 0
        assert pool.held_bytes() == 800
        pool.recycle(arr)

    def test_impossible_request_fails_fast(self):
        pool = BufferPool(budget_bytes=100)
        with pytest.raises(BudgetExceeded, match="larger than the whole"):
            pool.lease("u1", 101)
        assert pool.outstanding() == 0

    def test_backpressure_times_out_structurally(self):
        pool = BufferPool(budget_bytes=1000, budget_timeout_s=0.2)
        held = pool.lease("u1", 900)
        t0 = time.monotonic()
        with pytest.raises(BudgetExceeded, match="backpressure"):
            pool.lease("u1", 200)
        assert 0.1 < time.monotonic() - t0 < 5.0
        assert pool.budget_snapshot()["budget_stalls"] == 1
        pool.recycle(held)

    def test_backpressure_unblocks_when_a_lease_returns(self):
        pool = BufferPool(budget_bytes=1000, budget_timeout_s=10.0)
        held = pool.lease("u1", 900)
        got = []

        def blocked_lease():
            got.append(pool.lease("u1", 200))

        t = threading.Thread(target=blocked_lease)
        t.start()
        time.sleep(0.1)
        assert not got  # still blocked at the ceiling
        pool.recycle(held)
        pool.grab("u1", 900)  # pull the idle bytes out of the pool
        t.join(timeout=5.0)
        assert len(got) == 1
        assert pool.budget_snapshot()["peak_held_bytes"] <= 1000
        pool.recycle(got[0])

    def test_removing_the_budget_releases_waiters(self):
        pool = BufferPool(budget_bytes=1000, budget_timeout_s=10.0)
        held = pool.lease("u1", 900)
        got = []
        t = threading.Thread(target=lambda: got.append(pool.lease("u1", 500)))
        t.start()
        time.sleep(0.1)
        pool.set_budget(None)
        t.join(timeout=5.0)
        assert len(got) == 1
        pool.recycle(held)
        pool.recycle(got[0])

    def test_peak_never_exceeds_budget_under_churn(self):
        pool = BufferPool(budget_bytes=4096, budget_timeout_s=10.0)
        stop = threading.Event()
        errors = []

        def churn(rows):
            try:
                while not stop.is_set():
                    arr = pool.lease("u1", rows)
                    time.sleep(0.001)
                    pool.recycle(arr)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=churn, args=(rows,))
            for rows in (1024, 1500, 700, 2000)
        ]
        for t in threads:
            t.start()
        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join(timeout=5.0)
        assert not errors
        assert pool.budget_snapshot()["peak_held_bytes"] <= 4096

    def test_reset_budget_accounting_rebases(self):
        pool = BufferPool(budget_bytes=100, budget_timeout_s=0.05)
        with pytest.raises(BudgetExceeded):
            arr = pool.lease("u1", 80)
            try:
                pool.lease("u1", 80)
            finally:
                pool.recycle(arr)
        assert pool.budget_snapshot()["budget_stalls"] == 1
        pool.reset_budget_accounting()
        snap = pool.budget_snapshot()
        assert snap["budget_stalls"] == 0
        assert snap["peak_held_bytes"] == snap["held_bytes"]


class TestDepthDownshift:
    class _PressuredPool:
        def __init__(self, stalls):
            self._stalls = list(stalls)

        def consume_pressure(self):
            return self._stalls.pop(0) if self._stalls else 0

    def _governor(self, pool):
        stores = {"input": None, "t1": None, "output": None}
        return RunGovernor(stores, specs=[], cancel=None, pool=pool)

    def test_sustained_pressure_reduces_depth(self):
        gov = self._governor(self._PressuredPool([0, PRESSURE_STALLS, 0]))
        plan = PipelinePlan(depth=2)
        gov.begin_pass(1)
        assert gov.effective_plan(plan).depth == 2
        gov.begin_pass(2)  # pressure sampled here
        assert gov.effective_plan(plan).depth == 1
        gov.begin_pass(3)
        assert gov.effective_plan(plan).depth == 1  # penalty is sticky
        assert gov.snapshot()["depth_downshifts"] == 1

    def test_downshift_bottoms_out_synchronous(self):
        gov = self._governor(
            self._PressuredPool([PRESSURE_STALLS, PRESSURE_STALLS])
        )
        plan = PipelinePlan(depth=1)
        gov.begin_pass(1)
        gov.begin_pass(2)
        assert gov.effective_plan(plan) is SYNCHRONOUS

    def test_begin_pass_is_idempotent_per_index(self):
        pool = self._PressuredPool([PRESSURE_STALLS, PRESSURE_STALLS])
        gov = self._governor(pool)
        gov.begin_pass(1)
        gov.begin_pass(1)  # other ranks arriving: no double sample
        assert gov.snapshot()["depth_downshifts"] == 1

    def test_light_pressure_is_ignored(self):
        gov = self._governor(self._PressuredPool([PRESSURE_STALLS - 1] * 3))
        plan = PipelinePlan(depth=2)
        for index in (1, 2, 3):
            gov.begin_pass(index)
        assert gov.effective_plan(plan).depth == 2


class TestBudgetedRun:
    def test_budgeted_sort_verifies_and_respects_budget(self):
        records = generate("uniform", FMT, 8192, seed=3)
        cluster = ClusterConfig(p=4, mem_per_proc=2**12)
        budget = 2**26
        try:
            res = sort_out_of_core(
                "threaded", records, cluster, FMT, buffer_records=512,
                pipeline_depth=2, mem_budget_bytes=budget,
            )
            gov = res.governor
            assert gov["budget_bytes"] == budget
            assert 0 < gov["peak_held_bytes"] <= budget
            res.output.delete()
        finally:
            get_pool().set_budget(None)

    def test_budget_is_surfaced_even_without_stalls(self):
        records = generate("uniform", FMT, 8192, seed=3)
        cluster = ClusterConfig(p=4, mem_per_proc=2**12)
        try:
            res = sort_out_of_core(
                "threaded", records, cluster, FMT, buffer_records=512,
                mem_budget_bytes=2**28,
            )
            assert res.governor["budget_stalls"] == 0
            res.output.delete()
        finally:
            get_pool().set_budget(None)
