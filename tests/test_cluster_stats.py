"""Communication statistics: payload sizing and aggregation."""

import numpy as np

from repro.cluster.stats import CommStats, combined, payload_nbytes


class TestPayloadSizing:
    def test_numpy_arrays_exact(self):
        assert payload_nbytes(np.zeros(10, dtype=np.int64)) == 80
        assert payload_nbytes(np.zeros(0, dtype=np.float32)) == 0

    def test_structured_arrays_exact(self):
        from repro.records.format import RecordFormat

        fmt = RecordFormat("u8", 64)
        assert payload_nbytes(fmt.empty(5)) == 320

    def test_bytes_like(self):
        assert payload_nbytes(b"abcd") == 4
        assert payload_nbytes(bytearray(7)) == 7
        assert payload_nbytes(memoryview(b"xy")) == 2

    def test_containers_recurse(self):
        payload = [np.zeros(2, dtype=np.int64), (b"abc", np.zeros(1))]
        assert payload_nbytes(payload) == 16 + 3 + 8

    def test_control_plane_objects_are_free(self):
        assert payload_nbytes(None) == 0
        assert payload_nbytes({"op": "barrier"}) == 0
        assert payload_nbytes(42) == 0


class TestCommStats:
    def test_self_vs_network_accounting(self):
        stats = CommStats(rank=2)
        stats.record_send(2, np.zeros(4, dtype=np.int64), "send")  # self
        stats.record_send(0, np.zeros(2, dtype=np.int64), "send")  # network
        snap = stats.snapshot()
        assert snap["messages"] == 2
        assert snap["network_messages"] == 1
        assert snap["bytes"] == 48
        assert snap["network_bytes"] == 16

    def test_by_op_breakdown(self):
        stats = CommStats(rank=0)
        for _ in range(3):
            stats.record_send(1, b"", "alltoallv")
        stats.record_send(1, b"", "send")
        assert stats.snapshot()["by_op"] == {"alltoallv": 3, "send": 1}

    def test_reset(self):
        stats = CommStats(rank=0)
        stats.record_send(1, b"xyz", "send")
        stats.reset()
        snap = stats.snapshot()
        assert snap["messages"] == 0 and snap["by_op"] == {}

    def test_combined(self):
        a, b = CommStats(rank=0), CommStats(rank=1)
        a.record_send(1, b"1234", "send")
        b.record_send(1, b"12", "send")  # self for rank 1
        total = combined([a, b])
        assert total["messages"] == 2
        assert total["bytes"] == 6
        assert total["network_messages"] == 1
        assert total["network_bytes"] == 4

    def test_snapshot_is_isolated_copy(self):
        stats = CommStats(rank=0)
        stats.record_send(0, b"x", "send")
        snap = stats.snapshot()
        snap["by_op"]["send"] = 99
        assert stats.snapshot()["by_op"]["send"] == 1
