"""Admission control: quotas, bounded FIFO queueing, timeouts, and
structured shedding under a K-job storm.

The contract: at most ``max_concurrent`` jobs run, at most ``max_queue``
wait in arrival order, everything beyond that is shed *immediately*
with :class:`~repro.errors.AdmissionRejected` — overload becomes prompt
structured refusals, never unbounded latency.
"""

import threading
import time

import pytest

from repro.cluster.config import ClusterConfig
from repro.errors import AdmissionRejected, CancelledError, ConfigError
from repro.governor import (
    CancelToken,
    JobGovernor,
    get_job_governor,
    set_job_governor,
)
from repro.oocs.api import job_demands, sort_out_of_core
from repro.oocs.base import OocJob
from repro.records.format import RecordFormat
from repro.records.generators import generate

FMT = RecordFormat("u8", 64)


class TestGovernorBasics:
    def test_fast_path_admits_immediately(self):
        gov = JobGovernor(max_concurrent=2)
        ticket = gov.admit(mem_bytes=100)
        assert gov.running() == 1
        assert ticket.wait_s == 0.0
        ticket.release()
        assert gov.running() == 0
        snap = gov.snapshot()
        assert snap["admitted"] == snap["completed"] == 1

    def test_release_is_idempotent(self):
        gov = JobGovernor()
        ticket = gov.admit()
        ticket.release()
        ticket.release()
        assert gov.snapshot()["completed"] == 1

    def test_ticket_is_a_context_manager(self):
        gov = JobGovernor(max_concurrent=1)
        with gov.admit(mem_bytes=5, scratch_bytes=7) as ticket:
            assert gov.running() == 1
            snap = ticket.snapshot()
            assert snap["admitted_mem_bytes"] == 5
            assert snap["admitted_scratch_bytes"] == 7
        assert gov.running() == 0

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            JobGovernor(max_concurrent=0)
        with pytest.raises(ConfigError):
            JobGovernor(max_queue=-1)
        with pytest.raises(ConfigError):
            JobGovernor(queue_timeout_s=0)
        with pytest.raises(ConfigError):
            JobGovernor().admit(mem_bytes=-1)

    def test_impossible_demand_fails_fast(self):
        gov = JobGovernor(mem_quota_bytes=100)
        with pytest.raises(AdmissionRejected, match="demand exceeds quota"):
            gov.admit(mem_bytes=101)
        assert gov.snapshot()["rejected_impossible"] == 1
        gov2 = JobGovernor(scratch_quota_bytes=10)
        with pytest.raises(AdmissionRejected):
            gov2.admit(scratch_bytes=11)

    def test_mem_quota_gates_concurrency(self):
        gov = JobGovernor(max_concurrent=10, mem_quota_bytes=100,
                          queue_timeout_s=0.1, max_queue=1)
        first = gov.admit(mem_bytes=80)
        with pytest.raises(AdmissionRejected, match="timeout"):
            gov.admit(mem_bytes=30)
        first.release()
        second = gov.admit(mem_bytes=30)
        second.release()

    def test_queue_full_sheds_immediately(self):
        gov = JobGovernor(max_concurrent=1, max_queue=0)
        ticket = gov.admit()
        t0 = time.monotonic()
        with pytest.raises(AdmissionRejected, match="queue full") as err:
            gov.admit()
        assert time.monotonic() - t0 < 1.0  # shed, not queued
        assert err.value.reason == "queue full"
        assert gov.snapshot()["rejected_queue_full"] == 1
        ticket.release()

    def test_queue_timeout_is_structured(self):
        gov = JobGovernor(max_concurrent=1, max_queue=2, queue_timeout_s=0.15)
        ticket = gov.admit()
        with pytest.raises(AdmissionRejected, match="timeout"):
            gov.admit()
        assert gov.snapshot()["rejected_timeout"] == 1
        assert gov.queued() == 0  # the waiter cleaned itself up
        ticket.release()

    def test_cancel_token_aborts_the_wait(self):
        gov = JobGovernor(max_concurrent=1, max_queue=2, queue_timeout_s=30.0)
        ticket = gov.admit()
        token = CancelToken()
        timer = threading.Timer(0.05, token.cancel)
        timer.start()
        t0 = time.monotonic()
        with pytest.raises(CancelledError):
            gov.admit(cancel=token)
        assert time.monotonic() - t0 < 5.0
        assert gov.queued() == 0
        timer.join()
        ticket.release()

    def test_fifo_order_is_respected(self):
        gov = JobGovernor(max_concurrent=1, max_queue=4, queue_timeout_s=30.0)
        first = gov.admit()
        order = []
        started = []

        def waiter(name):
            started.append(name)
            with gov.admit():
                order.append(name)
                time.sleep(0.02)

        threads = []
        for name in ("a", "b", "c"):
            t = threading.Thread(target=waiter, args=(name,))
            threads.append(t)
            t.start()
            while name not in started:
                time.sleep(0.005)
            time.sleep(0.08)  # let the waiter reach the queue in order
        first.release()
        for t in threads:
            t.join(timeout=10.0)
        assert order == ["a", "b", "c"]

    def test_release_wakes_the_head_waiter(self):
        gov = JobGovernor(max_concurrent=1, max_queue=1, queue_timeout_s=30.0)
        first = gov.admit()
        got = []
        t = threading.Thread(target=lambda: got.append(gov.admit()))
        t.start()
        time.sleep(0.1)
        assert not got
        first.release()
        t.join(timeout=5.0)
        assert len(got) == 1
        assert got[0].wait_s > 0.0
        got[0].release()


class TestProcessGovernor:
    def test_default_is_off(self):
        assert get_job_governor() is None

    def test_set_returns_previous(self):
        gov = JobGovernor()
        try:
            assert set_job_governor(gov) is None
            assert get_job_governor() is gov
        finally:
            assert set_job_governor(None) is gov
        assert get_job_governor() is None

    def test_installed_governor_gates_api_runs(self):
        records = generate("uniform", FMT, 8192, seed=3)
        cluster = ClusterConfig(p=4, mem_per_proc=2**12)
        gov = JobGovernor(max_concurrent=2)
        set_job_governor(gov)
        try:
            res = sort_out_of_core(
                "threaded", records, cluster, FMT, buffer_records=512,
            )
            assert res.governor["admission_wait_s"] == 0.0
            assert res.governor["admitted_mem_bytes"] > 0
            res.output.delete()
        finally:
            set_job_governor(None)
        snap = gov.snapshot()
        assert snap["admitted"] == snap["completed"] == 1
        assert snap["running"] == 0

    def test_job_demands_scale_with_depth_and_n(self):
        cluster = ClusterConfig(p=4, mem_per_proc=2**12)
        shallow = OocJob(cluster=cluster, fmt=FMT, n=8192,
                         buffer_records=512, pipeline_depth=0)
        deep = OocJob(cluster=cluster, fmt=FMT, n=8192,
                      buffer_records=512, pipeline_depth=2)
        mem0, scratch0 = job_demands(shallow)
        mem2, scratch2 = job_demands(deep)
        assert mem2 > mem0 > 0
        assert scratch0 == scratch2 == 3 * 8192 * FMT.record_size


class TestAdmissionStorm:
    def test_storm_completes_queues_and_sheds(self):
        """K=7 simultaneous jobs against 2 slots + 2 queue places: the
        admitted ones complete and verify, the peaks respect the bounds,
        and the overflow is shed with AdmissionRejected."""
        records = generate("uniform", FMT, 8192, seed=3)
        cluster = ClusterConfig(p=2, mem_per_proc=2**12)
        expected = sort_out_of_core(
            "threaded", records, cluster, FMT, buffer_records=1024,
        ).output_records().tobytes()
        gov = JobGovernor(max_concurrent=2, max_queue=2, queue_timeout_s=30.0)
        k = 7
        outcomes = [None] * k
        start = threading.Barrier(k)

        def job(i):
            start.wait()
            try:
                res = sort_out_of_core(
                    "threaded", records, cluster, FMT, buffer_records=1024,
                    governor=gov,
                )
            except AdmissionRejected as exc:
                outcomes[i] = ("rejected", exc.reason)
            else:
                ok = res.output_records().tobytes() == expected
                outcomes[i] = ("completed" if ok else "diverged", None)
                res.output.delete()

        threads = [threading.Thread(target=job, args=(i,)) for i in range(k)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)

        kinds = [o[0] if o else "hung" for o in outcomes]
        snap = gov.snapshot()
        assert "hung" not in kinds and "diverged" not in kinds
        assert kinds.count("completed") == snap["admitted"] == snap["completed"]
        assert kinds.count("rejected") == snap["rejected_queue_full"] >= 1
        assert kinds.count("completed") + kinds.count("rejected") == k
        assert snap["peak_running"] <= 2
        assert snap["peak_queued"] <= 2
        assert snap["running"] == snap["queued"] == 0
        assert snap["mem_in_use"] == snap["scratch_in_use"] == 0


class TestPriorityQueueing:
    """Priority admission (the service daemon's tenant priorities map
    here): highest priority leaves the queue first, FIFO within a
    priority, and the default priority 0 everywhere stays plain FIFO."""

    def test_higher_priority_overtakes_earlier_arrival(self):
        gov = JobGovernor(max_concurrent=1, max_queue=4, queue_timeout_s=30.0)
        blocker = gov.admit()
        order = []
        lock = threading.Lock()

        def waiter(name, priority):
            ticket = gov.admit(priority=priority)
            with lock:
                order.append(name)
            ticket.release()

        low = threading.Thread(target=waiter, args=("low", 0))
        low.start()
        while gov.queued() < 1:
            time.sleep(0.005)
        high = threading.Thread(target=waiter, args=("high", 5))
        high.start()
        while gov.queued() < 2:
            time.sleep(0.005)
        blocker.release()
        low.join(timeout=30)
        high.join(timeout=30)
        assert order == ["high", "low"]

    def test_equal_priority_stays_fifo(self):
        gov = JobGovernor(max_concurrent=1, max_queue=8, queue_timeout_s=30.0)
        blocker = gov.admit()
        order = []
        lock = threading.Lock()
        threads = []

        def waiter(name):
            ticket = gov.admit(priority=3)
            with lock:
                order.append(name)
            ticket.release()

        for i in range(4):
            t = threading.Thread(target=waiter, args=(i,))
            t.start()
            threads.append(t)
            while gov.queued() < i + 1:
                time.sleep(0.005)
        blocker.release()
        for t in threads:
            t.join(timeout=30)
        assert order == [0, 1, 2, 3]

    def test_cancelled_high_priority_waiter_unblocks_the_rest(self):
        gov = JobGovernor(max_concurrent=1, max_queue=4, queue_timeout_s=30.0)
        blocker = gov.admit()
        token = CancelToken()
        outcome = {}

        def vip():
            try:
                gov.admit(priority=10, cancel=token)
            except CancelledError:
                outcome["vip"] = "cancelled"

        def regular():
            ticket = gov.admit(priority=0)
            outcome["regular"] = "admitted"
            ticket.release()

        t1 = threading.Thread(target=vip)
        t1.start()
        while gov.queued() < 1:
            time.sleep(0.005)
        t2 = threading.Thread(target=regular)
        t2.start()
        while gov.queued() < 2:
            time.sleep(0.005)
        token.cancel("changed plans")
        t1.join(timeout=30)
        blocker.release()
        t2.join(timeout=30)
        assert outcome == {"vip": "cancelled", "regular": "admitted"}
        assert gov.snapshot()["queued"] == 0
