"""Hybrid (subblock + M) columnsort — the §6 future-work algorithm."""

import pytest

from repro.bounds.restrictions import (
    max_n_hybrid,
    max_n_m_columnsort,
    max_n_subblock,
)
from repro.cluster.config import ClusterConfig
from repro.errors import ConfigError, DimensionError
from repro.oocs.api import sort_out_of_core
from repro.oocs.base import OocJob
from repro.oocs.hybrid import derive_shape
from repro.records.format import RecordFormat
from repro.records.generators import generate

FMT = RecordFormat("u8", 64)


def run(p, portion, s, workload="uniform", seed=0):
    cluster = ClusterConfig(p=p, mem_per_proc=max(portion, 8))
    n = p * portion * s
    recs = generate(workload, FMT, n, seed=seed)
    return (
        sort_out_of_core("hybrid", recs, cluster, FMT, buffer_records=portion),
        recs,
    )


class TestEndToEnd:
    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_cluster_sizes(self, p):
        # M = P·portion must satisfy M ≥ 4·s^(3/2) = 256 at s = 16.
        portion = max(2 * p * p, 256 // p)
        res, _ = run(p, portion, 16)
        assert res.passes == 4

    @pytest.mark.parametrize("workload", ["uniform", "duplicates", "zipf"])
    def test_workloads(self, workload):
        run(4, 64, 16, workload=workload)

    def test_io_is_exactly_four_passes(self):
        res, recs = run(4, 64, 16)
        nbytes = len(recs) * FMT.record_size
        assert res.io["bytes_read"] == 4 * nbytes
        assert res.io["bytes_written"] == 4 * nbytes

    def test_sorts_beyond_m_columnsort_bound(self):
        """The hybrid's reason to exist: a shape legal for it but not
        for M-columnsort (M < 2s² yet M ≥ 4·s^(3/2))."""
        # The regimes separate at larger scale; verify via the bounds:
        assert max_n_hybrid(2**23) > max_n_m_columnsort(2**23)
        # and functionally at a feasible in-between point:
        p, portion, s = 2, 128, 16
        m = p * portion  # 256; 2s² = 512 (M-columnsort illegal),
        assert m < 2 * s * s
        assert m * m >= 16 * s**3  # 4·s^(3/2) = 256 (hybrid legal)
        res, _ = run(p, portion, s, seed=4)
        assert res.passes == 4

    def test_bound_ordering(self):
        """Hybrid ≥ M-columnsort ≥ subblock for realistic shapes."""
        for a in range(16, 30, 2):
            m = 1 << a
            assert max_n_hybrid(m) >= max_n_m_columnsort(m)
            assert max_n_m_columnsort(m) >= max_n_subblock(m // 16) or a < 20


class TestValidation:
    def test_shape_derivation(self):
        cluster = ClusterConfig(p=4, mem_per_proc=2**8)
        job = OocJob(cluster=cluster, fmt=FMT, n=4 * 256 * 16, buffer_records=256)
        assert derive_shape(job) == (1024, 16)

    def test_s_power_of_4_required(self):
        cluster = ClusterConfig(p=4, mem_per_proc=2**8)
        job = OocJob(cluster=cluster, fmt=FMT, n=4 * 256 * 8, buffer_records=256)
        with pytest.raises(DimensionError, match="power of 4"):
            derive_shape(job)

    def test_relaxed_height_enforced(self):
        cluster = ClusterConfig(p=2, mem_per_proc=2**6)
        # M = 128, s = 64: 4·s^(3/2) = 2048 > 128.
        job = OocJob(cluster=cluster, fmt=FMT, n=128 * 64, buffer_records=64)
        with pytest.raises((DimensionError, ConfigError)):
            derive_shape(job)

    def test_p1_rejected(self):
        cluster = ClusterConfig(p=1, mem_per_proc=2**10)
        job = OocJob(cluster=cluster, fmt=FMT, n=2**12, buffer_records=2**10)
        with pytest.raises(ConfigError):
            derive_shape(job)
