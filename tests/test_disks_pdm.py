"""PDM striped-ordering arithmetic."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.disks.pdm import (
    pdm_disk_of,
    pdm_position,
    split_range_by_disk,
    split_range_by_owner,
)
from repro.errors import ConfigError


class TestPositions:
    def test_worked_example(self):
        # B=4, D=2: records 0-3 on disk 0, 4-7 on disk 1, 8-11 on disk 0…
        assert pdm_position(0, 4, 2) == (0, 0)
        assert pdm_position(5, 4, 2) == (1, 1)
        assert pdm_position(10, 4, 2) == (0, 6)

    def test_disk_of(self):
        assert [pdm_disk_of(g, 2, 3) for g in range(12)] == [
            0, 0, 1, 1, 2, 2, 0, 0, 1, 1, 2, 2,
        ]

    def test_positions_are_injective(self):
        seen = set()
        for g in range(64):
            pos = pdm_position(g, 4, 4)
            assert pos not in seen
            seen.add(pos)

    def test_balance_over_any_window(self):
        """PDM's point (footnote 6): any window of consecutive records
        is spread across disks as evenly as possible."""
        block, d = 4, 4
        for start in range(0, 40, 7):
            window = [pdm_disk_of(g, block, d) for g in range(start, start + 32)]
            counts = np.bincount(window, minlength=d)
            assert counts.max() - counts.min() <= 0  # 32 = 2 full stripes


class TestSplitting:
    def test_pieces_tile_the_range(self):
        pieces = list(split_range_by_disk(5, 20, block=4, d=3))
        assert sum(n for *_, n in pieces) == 20
        rels = [rel for _, _, rel, _ in pieces]
        assert rels == sorted(rels)
        assert rels[0] == 0

    def test_pieces_respect_block_boundaries(self):
        for disk, offset, rel, n in split_range_by_disk(3, 30, block=8, d=2):
            assert n <= 8
            global_start = 3 + rel
            assert global_start // 8 == (global_start + n - 1) // 8

    def test_split_by_owner_groups(self):
        groups = split_range_by_owner(0, 32, block=4, d=4, p=2)
        assert set(groups) == {0, 1}
        # disks 0,2 → rank 0; disks 1,3 → rank 1
        for rank, pieces in groups.items():
            for disk, *_ in pieces:
                assert disk % 2 == rank

    def test_empty_range(self):
        assert list(split_range_by_disk(10, 0, 4, 2)) == []

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            list(split_range_by_disk(0, 4, 0, 2))
        with pytest.raises(ConfigError):
            list(split_range_by_disk(-1, 4, 4, 2))

    @given(
        start=st.integers(min_value=0, max_value=500),
        count=st.integers(min_value=0, max_value=300),
        block=st.sampled_from([1, 2, 4, 8, 16]),
        d=st.sampled_from([1, 2, 4, 8]),
    )
    def test_split_matches_pointwise_positions(self, start, count, block, d):
        """Every record of every piece lands exactly where pdm_position
        says it should."""
        for disk, offset, rel, n in split_range_by_disk(start, count, block, d):
            for k in range(n):
                assert pdm_position(start + rel + k, block, d) == (disk, offset + k)
