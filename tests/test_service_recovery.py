"""Recovery-on-restart: a new daemon over a crashed daemon's root
requeues queued jobs, resumes running ones from their pass-boundary
checkpoints, and produces byte-identical output — with zero lost,
duplicated, or phantom jobs."""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import pytest

from repro.cluster.config import ClusterConfig
from repro.errors import Cancellation
from repro.governor import CancelToken
from repro.oocs.api import sort_out_of_core
from repro.oocs.report import output_digest
from repro.records.format import RecordFormat
from repro.records.generators import generate
from repro.service import ServiceClient, SortService
from repro.service.journal import JobJournal
from repro.service.protocol import SPEC_DEFAULTS

SPEC = {**SPEC_DEFAULTS, "records": 4096, "buffer": 512, "processors": 4}


@pytest.fixture
def service_root():
    with tempfile.TemporaryDirectory(prefix="svcr-", dir="/tmp") as root:
        yield Path(root)


def _expected_digest(spec) -> str:
    fmt = RecordFormat(spec["key"], spec["record_size"])
    cluster = ClusterConfig(p=spec["processors"], mem_per_proc=spec["buffer"] * 2)
    records = generate(spec["workload"], fmt, spec["records"], seed=spec["seed"])
    result = sort_out_of_core(
        spec["algorithm"], records, cluster, fmt,
        buffer_records=spec["buffer"], pipeline_depth=spec["pipeline_depth"],
    )
    return output_digest(result)


class _CrashAtPass(CancelToken):
    """Cancels at a pass boundary — on-disk state then looks exactly
    like a daemon killed mid-job (valid checkpoints, partial scratch)."""

    def __init__(self, at_pass: int) -> None:
        super().__init__()
        self.at_pass = at_pass

    def pass_boundary(self, completed_index: int) -> None:
        if completed_index >= self.at_pass:
            self.cancel("simulated daemon crash")
        super().pass_boundary(completed_index)


def _fabricate_crashed_job(root: Path, job_id: str, spec: dict,
                           at_pass: int) -> None:
    """Run the job into the service's directory layout and kill it at
    ``at_pass``, then journal the history a crashed daemon would leave:
    submitted/admitted/running/checkpointed with no terminal event."""
    fmt = RecordFormat(spec["key"], spec["record_size"])
    cluster = ClusterConfig(p=spec["processors"], mem_per_proc=spec["buffer"] * 2)
    records = generate(spec["workload"], fmt, spec["records"], seed=spec["seed"])
    jobdir = root / "jobs" / job_id
    with pytest.raises(Cancellation):
        sort_out_of_core(
            spec["algorithm"], records, cluster, fmt,
            buffer_records=spec["buffer"], pipeline_depth=spec["pipeline_depth"],
            workdir=jobdir / "work", checkpoint_dir=jobdir / "ckpt",
            cancel=_CrashAtPass(at_pass),
        )
    journal = JobJournal(root / "journal.log")
    journal.replay()  # continue the existing sequence, if any
    journal.append("submitted", job=job_id, tenant="default", spec=spec,
                   key=f"key-{job_id}")
    journal.append("admitted", job=job_id)
    journal.append("running", job=job_id)
    journal.append("checkpointed", job=job_id, **{"pass": at_pass})
    journal.close()


def test_resumed_job_completes_byte_identically(service_root):
    expected = _expected_digest(SPEC)
    _fabricate_crashed_job(service_root, "j000001", SPEC, at_pass=2)
    service = SortService(service_root, workers=1)
    service.start()
    try:
        assert service._recovered["resumed"] == ["j000001"]
        assert service._recovered["requeued"] == []
        with ServiceClient(service.socket_path) as client:
            final = client.wait("j000001", timeout_s=120)
            assert final["state"] == "done"
            assert final["attempts"] == 2  # the crashed attempt counts
            assert final["result"]["output_digest"] == expected
            # idempotent resubmit after the crash: same job, no double
            again = client.submit(SPEC, key="key-j000001")
            assert again["job"] == "j000001" and again["duplicate"] is True
            # fresh ids continue after the recovered one
            fresh = client.submit(SPEC)
            assert fresh["job"] == "j000002"
            client.wait(fresh["job"], timeout_s=120)
    finally:
        service.stop()


def test_submitted_and_admitted_jobs_are_requeued(service_root):
    """A crash can land between any two journal appends: a job stuck in
    ``submitted`` (ack'd but the admitted record never hit disk) or
    ``admitted`` (queued, no executor yet) must simply run."""
    journal = JobJournal(service_root / "journal.log")
    journal.append("submitted", job="j000001", tenant="default", spec=SPEC)
    journal.append("submitted", job="j000002", tenant="default", spec=SPEC)
    journal.append("admitted", job="j000002")
    journal.close()
    service = SortService(service_root, workers=2)
    service.start()
    try:
        assert sorted(service._recovered["requeued"]) == ["j000001", "j000002"]
        with ServiceClient(service.socket_path) as client:
            digests = {
                client.wait(job, timeout_s=120)["result"]["output_digest"]
                for job in ("j000001", "j000002")
            }
            assert digests == {_expected_digest(SPEC)}
    finally:
        service.stop()


def test_torn_journal_tail_is_repaired_on_start(service_root):
    journal = JobJournal(service_root / "journal.log")
    journal.append("submitted", job="j000001", tenant="default", spec=SPEC)
    journal.append("admitted", job="j000001")
    journal.append("running", job="j000001")
    journal.append("done", job="j000001", result={"output_digest": "d"})
    journal.close()
    clean = (service_root / "journal.log").stat().st_size
    with open(service_root / "journal.log", "ab") as fh:
        fh.write(b'0001 {"torn')  # a write the crash cut short
    service = SortService(service_root)
    service.start()
    try:
        assert service._recovered["torn_bytes_repaired"] == 11
        # the repaired journal accepts appends that replay cleanly
        with ServiceClient(service.socket_path) as client:
            assert client.result("j000001")["result"] == {"output_digest": "d"}
    finally:
        service.stop()
    events, torn = JobJournal(service_root / "journal.log").replay()
    assert torn == 0
    assert (service_root / "journal.log").stat().st_size > clean  # recovered event
    kinds = [e["kind"] for e in events]
    assert kinds[:4] == ["submitted", "admitted", "running", "done"]
    assert "recovered" in kinds


def test_terminal_jobs_survive_restart_without_rerunning(service_root):
    service = SortService(service_root, workers=1)
    service.start()
    try:
        with ServiceClient(service.socket_path) as client:
            job = client.submit(SPEC, key="k")["job"]
            done = client.wait(job, timeout_s=120)
    finally:
        service.stop()
    restarted = SortService(service_root, workers=1)
    restarted.start()
    try:
        assert restarted._recovered["requeued"] == []
        assert restarted._recovered["resumed"] == []
        with ServiceClient(restarted.socket_path) as client:
            final = client.result(job)
            assert final["state"] == "done"
            assert final["result"]["output_digest"] == \
                done["result"]["output_digest"]
            assert final["attempts"] == 1  # never re-ran
    finally:
        restarted.stop()


def test_successful_job_checkpoints_are_pruned(service_root):
    """The satellite contract end to end: a job that finishes leaves no
    checkpoint manifests behind (the directory itself is retired)."""
    service = SortService(service_root, workers=1)
    service.start()
    try:
        with ServiceClient(service.socket_path) as client:
            job = client.submit(SPEC)["job"]
            client.wait(job, timeout_s=120)
            ckpt = service.job_dir(job) / "ckpt"
            deadline = time.monotonic() + 10
            while ckpt.exists() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert not ckpt.exists()
    finally:
        service.stop()
