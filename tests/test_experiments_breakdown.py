"""T-breakdown and the newer CLI commands."""

import pytest

from repro.cli import main
from repro.experiments.breakdown import breakdown_table, io_boundedness


class TestBreakdown:
    @pytest.fixture(scope="class")
    def rows(self):
        return breakdown_table()

    def test_pass_counts(self, rows):
        by_alg = {}
        for row in rows:
            by_alg.setdefault(row["algorithm"], []).append(row)
        assert len(by_alg["threaded"]) == 3
        assert len(by_alg["subblock"]) == 4
        assert len(by_alg["m"]) == 3

    def test_threaded_is_io_bound_everywhere(self, rows):
        """§5: 'threaded columnsort is almost purely I/O-bound'."""
        for row in rows:
            if row["algorithm"] in ("threaded", "subblock"):
                assert row["bottleneck"] == "io"
                assert row["io util %"] > 95

    def test_m_less_io_bound(self, rows):
        """§5: 'M-columnsort is not nearly as I/O-bound'."""
        util = io_boundedness(rows)
        assert util["m"] < util["threaded"] - 5
        assert util["subblock"] > 95

    def test_m_has_non_io_bottleneck_somewhere(self, rows):
        m_rows = [r for r in rows if r["algorithm"] == "m"]
        assert any(r["bottleneck"] != "io" or r["io util %"] < 90 for r in m_rows)

    def test_stage_counts_match_paper(self, rows):
        stages = {
            (r["algorithm"], r["pass"]): r["stages"] for r in rows
        }
        assert stages[("threaded", "pass1:steps1-2")] == 5
        assert stages[("threaded", "pass3:steps5-8")] == 7
        assert stages[("m", "pass1:steps1-2")] == 11
        assert stages[("m", "pass3:steps5-8")] == 20

    def test_ineligible_algorithms_skipped(self):
        rows = breakdown_table(gb_total=32, p=16, buffer_bytes=2**25)
        algs = {r["algorithm"] for r in rows}
        assert "threaded" not in algs  # restriction (1) bites at 32 GB
        assert "m" in algs


class TestNewCliCommands:
    def test_predict(self, capsys):
        assert main(["predict", "--algorithm", "m", "--gb", "8", "-p", "8"]) == 0
        out = capsys.readouterr().out
        assert "s per (GB/processor)" in out

    def test_predict_infeasible(self, capsys):
        rc = main(["predict", "--algorithm", "threaded", "--gb", "32", "-p", "16"])
        assert rc == 1
        assert "not runnable" in capsys.readouterr().out

    def test_predict_modern_hardware(self, capsys):
        assert main(["predict", "--hardware", "modern-nvme"]) == 0
        assert "modern-nvme" in capsys.readouterr().out

    def test_sort_with_group_size(self, capsys, tmp_path):
        rc = main([
            "sort", "--records", "8192", "--buffer", "512", "-p", "4",
            "-g", "2", "--workdir", str(tmp_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "g-columnsort(g=2)" in out and "verified" in out

    def test_report_includes_breakdown(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "T-breakdown" in out
        assert "I/O-boundedness" in out
