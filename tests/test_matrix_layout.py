"""Flat/matrix conversions and column sorting."""

import numpy as np
import pytest

from repro.errors import DimensionError
from repro.matrix.layout import (
    from_columns,
    is_sorted_column_major,
    is_sorted_columnwise,
    sort_columns,
    sort_values,
    to_columns,
)
from repro.records.format import RecordFormat


class TestConversions:
    def test_roundtrip(self):
        flat = np.arange(24)
        m = to_columns(flat, 6, 4)
        assert m.shape == (6, 4)
        assert list(m[:, 0]) == list(range(6))
        assert np.array_equal(from_columns(m), flat)

    def test_column_major_semantics(self):
        m = to_columns(np.arange(6), 3, 2)
        assert list(m[:, 1]) == [3, 4, 5]

    def test_record_arrays(self):
        fmt = RecordFormat("u8", 32)
        recs = fmt.make(np.arange(12, dtype=np.uint64))
        m = to_columns(recs, 4, 3)
        assert np.array_equal(from_columns(m), recs)

    def test_bad_length(self):
        with pytest.raises(DimensionError):
            to_columns(np.arange(5), 2, 3)

    def test_bad_ndim(self):
        with pytest.raises(DimensionError):
            from_columns(np.arange(6))


class TestSortColumns:
    def test_plain(self):
        m = np.array([[3, 1], [1, 2], [2, 0]])
        out = sort_columns(m)
        assert np.array_equal(out, [[1, 0], [2, 1], [3, 2]])

    def test_input_unmodified(self):
        m = np.array([[3], [1]])
        sort_columns(m)
        assert m[0, 0] == 3

    def test_records_sorted_by_key_only(self):
        fmt = RecordFormat("u8", 32)
        recs = fmt.make(
            np.array([2, 1, 1, 2], dtype=np.uint64), uids=np.array([0, 1, 2, 3])
        )
        m = to_columns(recs, 2, 2)
        out = sort_columns(m)
        assert list(out["key"][:, 0]) == [1, 2]
        assert list(out["key"][:, 1]) == [1, 2]

    def test_records_stable_within_column(self):
        fmt = RecordFormat("u8", 32)
        recs = fmt.make(np.zeros(4, dtype=np.uint64), uids=np.arange(4))
        out = sort_columns(to_columns(recs, 4, 1))
        assert list(out["uid"][:, 0]) == [0, 1, 2, 3]

    def test_rejects_1d(self):
        with pytest.raises(DimensionError):
            sort_columns(np.arange(4))


class TestSortedness:
    def test_columnwise(self):
        assert is_sorted_columnwise(np.array([[1, 5], [2, 5], [3, 4]])) is False
        assert is_sorted_columnwise(np.array([[1, 4], [2, 5]]))
        assert is_sorted_columnwise(np.zeros((1, 3)))

    def test_column_major(self):
        ok = to_columns(np.arange(12), 4, 3)
        assert is_sorted_column_major(ok)
        bad = ok.copy()
        bad[0, 1] = 0  # duplicate of global minimum out of place
        assert not is_sorted_column_major(bad) or bad[3, 0] <= bad[0, 1]

    def test_column_major_records(self):
        fmt = RecordFormat("u8", 32)
        recs = fmt.make(np.arange(8, dtype=np.uint64))
        assert is_sorted_column_major(to_columns(recs, 4, 2))

    def test_sort_values_plain_and_records(self):
        assert list(sort_values(np.array([3, 1, 2]))) == [1, 2, 3]
        fmt = RecordFormat("u8", 32)
        out = sort_values(fmt.make(np.array([3, 1], dtype=np.uint64)))
        assert list(out["key"]) == [1, 3]
