"""g-columnsort: the §6 adjustable height interpretation, plus the
sub-communicators and group-striped store underneath it."""

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.spmd import run_spmd
from repro.disks.matrixfile import GroupColumnStore
from repro.disks.virtual_disk import make_disk_array
from repro.errors import CommError, ConfigError, DimensionError, DiskError
from repro.oocs.base import OocJob
from repro.oocs.gcolumnsort import (
    derive_shape,
    g_bound,
    smallest_group_size,
    sort_with_group_size,
)
from repro.records.format import RecordFormat
from repro.records.generators import generate

FMT = RecordFormat("u8", 64)


class TestCommSplit:
    def test_groups_and_subranks(self):
        def prog(comm):
            sub = comm.split(color=comm.rank // 2)
            return (sub.size, sub.rank, sub.allgather(comm.rank))

        res = run_spmd(4, prog)
        assert res.returns[0] == (2, 0, [0, 1])
        assert res.returns[3] == (2, 1, [2, 3])

    def test_key_orders_subranks(self):
        def prog(comm):
            sub = comm.split(color=0, key=-comm.rank)  # reversed
            return sub.rank

        assert run_spmd(3, prog).returns == [2, 1, 0]

    def test_sub_traffic_does_not_leak_across_groups(self):
        def prog(comm):
            sub = comm.split(color=comm.rank % 2)
            sub.send(np.full(1, comm.rank), dest=(sub.rank + 1) % sub.size)
            got = sub.recv(source=(sub.rank + 1) % sub.size)
            # even group only ever sees even ranks and vice versa
            return int(got[0]) % 2 == comm.rank % 2

        assert all(run_spmd(4, prog).returns)

    def test_parent_and_child_interleave(self):
        def prog(comm):
            sub = comm.split(color=comm.rank // 2)
            a = sub.allgather("child")
            b = comm.allgather("parent")
            c = sub.allreduce(1)
            return (len(a), len(b), c)

        assert run_spmd(4, prog).returns == [(2, 4, 2)] * 4

    def test_nested_split(self):
        def prog(comm):
            half = comm.split(color=comm.rank // 2)
            solo = half.split(color=half.rank)
            return (solo.size, solo.allreduce(comm.rank))

        res = run_spmd(4, prog)
        assert res.returns == [(1, 0), (1, 1), (1, 2), (1, 3)]

    def test_singleton_group_membership_error(self):
        from repro.cluster.comm import _SubComm
        from repro.cluster.mailbox import MailboxRouter
        from repro.cluster.comm import Comm

        comm = Comm(0, 2, MailboxRouter(timeout=1))
        with pytest.raises(CommError, match="not a member"):
            _SubComm(comm, [1])

    def test_sub_stats_feed_parent_counters(self):
        def prog(comm):
            sub = comm.split(color=0)
            sub.send(np.zeros(4, dtype=np.int64), dest=(sub.rank + 1) % 2)
            sub.recv(source=(sub.rank + 1) % 2)
            return comm.stats.snapshot()["network_bytes"]

        res = run_spmd(2, prog)
        assert all(v >= 32 for v in res.returns)


class TestGroupColumnStore:
    @pytest.fixture
    def env(self, tmp_path):
        cfg = ClusterConfig(p=4, mem_per_proc=2**12)
        disks = make_disk_array(tmp_path, 4)
        recs = generate("uniform", FMT, 64 * 8, seed=1)
        return cfg, disks, recs

    @pytest.mark.parametrize("g", [1, 2, 4])
    def test_roundtrip(self, env, g):
        cfg, disks, recs = env
        store = GroupColumnStore.from_records(cfg, FMT, recs, 64, 8, disks, g)
        assert np.array_equal(store.to_records(), recs)
        assert store.portion == 64 // g

    def test_g1_matches_whole_column_ownership(self, env):
        cfg, disks, recs = env
        store = GroupColumnStore.from_records(cfg, FMT, recs, 64, 8, disks, 1)
        # group j mod 4 ≡ rank j mod 4, one member each
        assert store.rank_of(5, 0) == 1
        assert np.array_equal(store.read_portion(1, 5), recs[5 * 64 : 6 * 64])

    def test_group_access_control(self, env):
        cfg, disks, recs = env
        store = GroupColumnStore.from_records(cfg, FMT, recs, 64, 8, disks, 2)
        # column 1 → group 1 (ranks 2, 3); rank 0 may not touch it.
        with pytest.raises(DiskError, match="owned by group"):
            store.read_portion(0, 1)
        assert len(store.read_portion(2, 1)) == 32

    def test_append_overflow_guard(self, env):
        cfg, disks, recs = env
        store = GroupColumnStore(cfg, FMT, 64, 8, disks, 2, name="ov")
        store.append_to_portion(0, 0, recs[:32])
        with pytest.raises(ConfigError, match="overflows"):
            store.append_to_portion(0, 0, recs[:1])

    def test_shape_validation(self, env):
        cfg, disks, _ = env
        with pytest.raises(ConfigError):
            GroupColumnStore(cfg, FMT, 64, 8, disks, 3)  # g ∤ P
        with pytest.raises(ConfigError):
            GroupColumnStore(cfg, FMT, 66, 8, disks, 4)  # g ∤ r
        with pytest.raises(ConfigError):
            GroupColumnStore(cfg, FMT, 64, 6, disks, 1)  # G=4 ∤ s=6


class TestGColumnsort:
    @pytest.mark.parametrize("g", [1, 2, 4])
    def test_sorts_at_every_group_size(self, g):
        cluster = ClusterConfig(p=4, mem_per_proc=512)
        recs = generate("duplicates", FMT, 8192, seed=2)
        res = sort_with_group_size(recs, cluster, FMT, 512, group_size=g)
        assert res.passes == 3
        assert res.io["bytes_read"] == 3 * len(recs) * 64

    @pytest.mark.parametrize("workload", ["uniform", "zipf", "all-equal"])
    def test_workloads(self, workload):
        cluster = ClusterConfig(p=4, mem_per_proc=512)
        recs = generate(workload, FMT, 8192, seed=3)
        sort_with_group_size(recs, cluster, FMT, 512, group_size=2)

    def test_p8_middle_group_size(self):
        cluster = ClusterConfig(p=8, mem_per_proc=256)
        recs = generate("uniform", FMT, 8 * 256 * 4, seed=4)
        res = sort_with_group_size(recs, cluster, FMT, 256, group_size=4)
        assert res.passes == 3

    def test_sort_stage_traffic_grows_with_g(self):
        """The §6 trade, measured: larger groups mean more sort-stage
        communication (at identical N and buffers)."""
        cluster = ClusterConfig(p=4, mem_per_proc=512)
        recs = generate("uniform", FMT, 8192, seed=5)
        volumes = {
            g: sort_with_group_size(
                recs, cluster, FMT, 512, group_size=g
            ).comm_total["network_bytes"]
            for g in (1, 2, 4)
        }
        assert volumes[1] < volumes[2] < volumes[4]

    def test_bound_interpolates(self):
        """g=1 gives restriction (1), g=P gives restriction (3), and the
        bound is monotone in g."""
        from repro.bounds.restrictions import max_n_m_columnsort, max_n_threaded

        mem = 2**14
        assert g_bound(mem, 1) == max_n_threaded(mem)
        assert g_bound(mem, 16) == max_n_m_columnsort(16 * mem)
        bounds = [g_bound(mem, 1 << k) for k in range(5)]
        assert bounds == sorted(bounds)

    def test_smallest_group_size_policy(self):
        # N = 65536 needs g=4 at buffer 512 (bounds 8192 / 23170 / 65536).
        assert smallest_group_size(8192, 4, 512) == 1
        assert smallest_group_size(16384, 4, 512) == 2
        assert smallest_group_size(65536, 4, 512) == 4
        with pytest.raises(DimensionError):
            smallest_group_size(2**20, 4, 512)

    def test_auto_policy_runs_beyond_threaded_bound(self):
        """A problem size threaded columnsort cannot configure at this
        buffer; the auto policy escalates g and the sort verifies."""
        cluster = ClusterConfig(p=4, mem_per_proc=512)
        n = 32768  # > g_bound(512, 1) = 8192
        recs = generate("uniform", FMT, n, seed=6)
        res = sort_with_group_size(recs, cluster, FMT, 512)
        assert "g=4" in res.algorithm or "g=2" in res.algorithm

    def test_shape_validation(self):
        cluster = ClusterConfig(p=4, mem_per_proc=512)
        job = OocJob(cluster=cluster, fmt=FMT, n=8192, buffer_records=512)
        assert derive_shape(job, 1) == (512, 16)
        assert derive_shape(job, 2) == (1024, 8)
        with pytest.raises(ConfigError):
            derive_shape(job, 3)  # not a power of 2
        with pytest.raises(ConfigError):
            derive_shape(job, 8)  # g > P
        big = OocJob(cluster=cluster, fmt=FMT, n=2**20, buffer_records=512)
        with pytest.raises(DimensionError, match="larger group size"):
            derive_shape(big, 1)
