"""Buffer pool and copy-accounting unit tests (repro.membuf)."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.membuf import (
    BufferPool,
    CopyStats,
    copy_delta,
    copy_stats,
    get_pool,
    legacy_copies,
)
from repro.membuf.pool import MAX_FREE_PER_KEY
from repro.records.format import RecordFormat


class TestBufferPool:
    def test_lease_recycle_roundtrip_hits_freelist(self):
        pool = BufferPool()
        a = pool.lease(np.int64, 100)
        assert pool.outstanding() == 1
        assert pool.recycle(a)
        assert pool.outstanding() == 0
        b = pool.lease(np.int64, 100)
        assert b is a  # the freelist handed the same array back
        pool.clear()

    def test_fresh_take_is_a_miss_reuse_is_a_hit(self):
        pool = BufferPool()
        before = copy_stats().snapshot()
        a = pool.grab(np.float64, 32)
        mid = copy_stats().snapshot()
        assert mid["pool_misses"] - before["pool_misses"] == 1
        pool.recycle(a)
        pool.grab(np.float64, 32)
        after = copy_stats().snapshot()
        assert after["pool_hits"] - mid["pool_hits"] == 1

    def test_keys_are_dtype_and_rows(self):
        pool = BufferPool()
        a = pool.grab(np.int64, 10)
        pool.recycle(a)
        assert pool.grab(np.int64, 11) is not a  # different rows
        assert pool.grab(np.int32, 10) is not a  # different dtype
        assert pool.grab(np.int64, 10) is a
        pool.clear()

    def test_structured_dtype_buffers(self, small_fmt: RecordFormat):
        pool = BufferPool()
        a = pool.lease(small_fmt.dtype, 64)
        assert a.dtype == small_fmt.dtype and a.shape == (64,)
        assert pool.recycle(a)
        assert pool.lease(small_fmt.dtype, 64) is a
        pool.clear()

    def test_grab_is_untracked(self):
        pool = BufferPool()
        pool.grab(np.int64, 8)
        assert pool.outstanding() == 0

    def test_recycle_view_is_noop(self):
        pool = BufferPool()
        base = np.zeros(100, dtype=np.int64)
        assert not pool.recycle(base[10:20])
        assert pool.free_buffers() == 0

    def test_recycle_2d_and_foreign_rejected(self):
        pool = BufferPool()
        assert not pool.recycle(np.zeros((4, 4)))
        assert not pool.recycle([1, 2, 3])
        assert not pool.recycle(b"bytes")
        assert pool.free_buffers() == 0

    def test_recycle_view_still_closes_lease(self):
        """A leased buffer replaced by a view (e.g. sliced) cannot be
        pooled, but recycling it must still balance the lease count."""
        pool = BufferPool()
        a = pool.lease(np.int64, 16)
        view = a[:8]
        assert not pool.recycle(view)  # not adopted (aliases `a`)
        assert pool.outstanding() == 1  # the view is not the lease
        assert pool.recycle(a)
        assert pool.outstanding() == 0
        pool.clear()

    def test_freelist_capped_per_key(self):
        pool = BufferPool(max_free_per_key=2)
        arrays = [np.empty(5, dtype=np.int64) for _ in range(4)]
        for arr in arrays:
            pool.recycle(arr)
        assert pool.free_buffers() == 2
        assert MAX_FREE_PER_KEY == 8  # documented default

    def test_forget_leases_crash_cleanup(self):
        pool = BufferPool()
        pool.lease(np.int64, 4)
        pool.lease(np.int64, 4)
        assert pool.outstanding() == 2
        assert pool.forget_leases() == 2
        assert pool.outstanding() == 0
        assert pool.free_buffers() == 0  # forgotten, not pooled

    def test_clear_empties_everything(self):
        pool = BufferPool()
        pool.recycle(np.empty(3, dtype=np.int64))
        pool.lease(np.int64, 3)
        assert pool.clear() == 1
        assert pool.free_buffers() == 0 and pool.outstanding() == 0

    def test_global_pool_is_shared(self):
        assert get_pool() is get_pool()

    def test_thread_safety_smoke(self):
        pool = BufferPool()
        errors = []

        def churn():
            try:
                for _ in range(200):
                    arr = pool.lease(np.int64, 64)
                    arr[:] = 1
                    pool.recycle(arr)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=churn) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert pool.outstanding() == 0
        pool.clear()


class TestCopyStats:
    def test_counters_and_snapshot(self):
        stats = CopyStats()
        stats.record_copy(100)
        stats.record_zero_copy(50)
        stats.record_pool(hit=True)
        stats.record_pool(hit=False)
        snap = stats.snapshot()
        assert snap["bytes_copied"] == 100
        assert snap["bytes_zero_copy"] == 50
        assert snap["pool_hits"] == 1 and snap["pool_misses"] == 1

    def test_peak_leases_high_water(self):
        stats = CopyStats()
        stats.record_lease(1)
        stats.record_lease(2)
        stats.record_return()
        stats.record_lease(2)  # back up to 2, peak stays 2
        assert stats.snapshot()["peak_leases"] == 2
        stats.rebase_peak(1)
        assert stats.snapshot()["peak_leases"] == 1

    def test_copy_delta_differences_counters_keeps_peak(self):
        stats = CopyStats()
        stats.record_copy(10)
        before = stats.snapshot()
        stats.record_copy(30)
        stats.record_lease(5)
        delta = copy_delta(before, stats.snapshot())
        assert delta["bytes_copied"] == 30
        assert delta["leases"] == 1
        assert delta["peak_leases"] == 5  # absolute, not differenced

    def test_reset(self):
        stats = CopyStats()
        stats.record_copy(1)
        stats.reset()
        assert all(v == 0 for v in stats.snapshot().values())


class TestLegacySwitch:
    def test_default_is_pooled(self, monkeypatch):
        monkeypatch.delenv("REPRO_LEGACY_COPIES", raising=False)
        assert not legacy_copies()

    @pytest.mark.parametrize("value,expect", [
        ("1", True), ("yes", True), ("0", False), ("", False),
    ])
    def test_env_values(self, monkeypatch, value, expect):
        monkeypatch.setenv("REPRO_LEGACY_COPIES", value)
        assert legacy_copies() is expect
