"""Subblock columnsort, end to end — including §3's message-count
properties, metered on live runs."""

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.spmd import run_spmd
from repro.disks.matrixfile import ColumnStore
from repro.errors import ConfigError, DimensionError
from repro.matrix.bits import sqrt_pow4
from repro.oocs.api import sort_out_of_core
from repro.oocs.base import OocJob, make_workspace
from repro.oocs.subblock import (
    derive_shape,
    expected_messages_per_round,
    pass_subblock,
    subblock_round_routing,
)
from repro.records.format import RecordFormat
from repro.records.generators import generate

FMT = RecordFormat("u8", 64)


def run(p, r, s, workload="uniform", fmt=FMT, seed=0):
    cluster = ClusterConfig(p=p, mem_per_proc=max(r, 8))
    recs = generate(workload, fmt, r * s, seed=seed)
    return sort_out_of_core("subblock", recs, cluster, fmt, buffer_records=r), recs


class TestEndToEnd:
    @pytest.mark.parametrize("p", [1, 2, 4, 8, 16])
    def test_cluster_sizes_spanning_sqrt_s(self, p):
        # s=16, √s=4: covers P < √s, P = √s, and P > √s.
        run(p, 256, 16)

    def test_sorts_below_basic_columnsort_bound(self):
        """The headline capability: r=256, s=16 violates r ≥ 2s² = 512
        but subblock columnsort handles it (bound (2))."""
        res, _ = run(4, 256, 16, workload="duplicates")
        assert res.passes == 4

    @pytest.mark.parametrize(
        "workload", ["uniform", "reverse", "duplicates", "all-equal", "zipf"]
    )
    def test_workloads(self, workload):
        run(4, 256, 16, workload=workload)

    def test_io_is_exactly_four_passes(self):
        res, recs = run(4, 256, 16)
        nbytes = len(recs) * FMT.record_size
        assert res.io["bytes_read"] == 4 * nbytes
        assert res.io["bytes_written"] == 4 * nbytes
        assert len(res.io_per_pass) == 4

    def test_larger_s(self):
        run(4, 2048, 64, seed=3)  # √s = 8 > P


class TestMessageCounts:
    """Paper §3 properties 1 and 2, against live communication stats."""

    def test_no_network_traffic_when_sqrt_s_geq_p(self):
        for p in (2, 4):  # √16 = 4 ≥ P
            res, _ = run(p, 256, 16)
            assert res.comm_per_pass[1]["network_bytes"] == 0, p

    def test_network_bytes_when_p_exceeds_sqrt_s(self):
        p, r, s = 8, 256, 16
        res, _ = run(p, r, s)
        msgs = expected_messages_per_round(s, p)  # ⌈8/4⌉ = 2
        assert msgs == 2
        rounds = s // p
        per_round = (msgs - 1) * (r // msgs) * FMT.record_size
        assert res.comm_per_pass[1]["network_bytes"] == rounds * per_round

    def test_deal_pass_sends_more(self):
        """The subblock pass communicates strictly less than the deal
        passes around it whenever √s > 1."""
        res, _ = run(8, 256, 16)
        assert (
            res.comm_per_pass[1]["network_bytes"]
            < res.comm_per_pass[0]["network_bytes"]
        )

    def test_exact_message_count_metered(self, tmp_path):
        """Run just the subblock pass and count network messages: each
        processor sends exactly ⌈P/√s⌉−1 messages per round over the
        network (the remaining one is its self-message)."""
        p, r, s = 8, 256, 16
        cluster = ClusterConfig(p=p, mem_per_proc=2**10)
        recs = generate("uniform", FMT, r * s, seed=2)
        ws = make_workspace(cluster, FMT, recs, r, s, workdir=tmp_path)
        dst = ColumnStore(cluster, FMT, r, s, ws.disks, name="dst")

        def prog(comm):
            pass_subblock(comm, ws.input, dst, FMT)
            return comm.stats.snapshot()

        res = run_spmd(p, prog)
        rounds = s // p
        expected_net = rounds * (expected_messages_per_round(s, p) - 1)
        for snap in res.returns:
            assert snap["network_messages"] == expected_net

    @pytest.mark.parametrize("p,s", [(2, 16), (4, 16), (8, 16), (16, 16),
                                     (4, 64), (16, 64), (32, 64)])
    def test_expected_messages_formula(self, p, s):
        t = sqrt_pow4(s)
        assert expected_messages_per_round(s, p) == -(-p // t)

    @pytest.mark.parametrize("p,s", [(2, 16), (8, 16), (16, 16), (16, 64)])
    def test_routing_table_has_exactly_that_many_destinations(self, p, s):
        r = 16 * s
        for c in range(s):
            routing = subblock_round_routing(c, r, s, p)
            assert len(routing) == expected_messages_per_round(s, p)
            # Every subblock row class appears exactly once.
            xs = sorted(x for lst in routing.values() for x in lst)
            assert xs == list(range(sqrt_pow4(s)))

    def test_self_message_always_present(self):
        """Property 2's core: the sender's own rank is always among the
        destinations (so ⌈P/√s⌉ = 1 means zero network messages)."""
        for p in (2, 4, 8, 16):
            for c in range(16):
                routing = subblock_round_routing(c, 256, 16, p)
                assert (c % p) in routing


class TestValidation:
    def test_shape_derivation(self):
        cluster = ClusterConfig(p=4, mem_per_proc=2**10)
        job = OocJob(cluster=cluster, fmt=FMT, n=256 * 16, buffer_records=256)
        assert derive_shape(job) == (256, 16)

    def test_s_must_be_power_of_4(self):
        cluster = ClusterConfig(p=4, mem_per_proc=2**12)
        job = OocJob(cluster=cluster, fmt=FMT, n=2048 * 32, buffer_records=2048)
        with pytest.raises(DimensionError, match="power of 4"):
            derive_shape(job)

    def test_relaxed_height_enforced(self):
        cluster = ClusterConfig(p=4, mem_per_proc=2**10)
        job = OocJob(cluster=cluster, fmt=FMT, n=128 * 16, buffer_records=128)
        with pytest.raises(DimensionError, match="relaxed height"):
            derive_shape(job)

    def test_p_divides_s(self):
        cluster = ClusterConfig(p=8, mem_per_proc=2**10)
        job = OocJob(cluster=cluster, fmt=FMT, n=256 * 4, buffer_records=256)
        with pytest.raises(ConfigError, match="at least P"):
            derive_shape(job)
