"""Threaded columnsort, end to end on the simulated cluster."""

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.disks.matrixfile import ColumnStore
from repro.errors import ConfigError, DimensionError
from repro.matrix.layout import sort_columns, to_columns
from repro.matrix.permutations import step2
from repro.oocs.api import sort_out_of_core
from repro.oocs.base import OocJob, make_workspace
from repro.oocs.threaded import derive_shape, threaded_columnsort_ooc
from repro.oocs.verify import verify_output
from repro.records.format import RecordFormat
from repro.records.generators import generate

FMT = RecordFormat("u8", 64)


def run(p, r, s, workload="uniform", fmt=FMT, seed=0, **kw):
    cluster = ClusterConfig(p=p, mem_per_proc=max(r, 2 * p * p))
    recs = generate(workload, fmt, r * s, seed=seed)
    res = sort_out_of_core(
        "threaded", recs, cluster, fmt, buffer_records=r, **kw
    )
    return res, recs


class TestEndToEnd:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_various_cluster_sizes(self, p):
        res, recs = run(p, 512, 16)
        assert res.passes == 3  # verification happens inside run()

    @pytest.mark.parametrize(
        "workload", ["uniform", "sorted", "reverse", "duplicates", "all-equal",
                     "zipf", "organ-pipe"]
    )
    def test_workload_shapes(self, workload):
        run(4, 128, 8, workload=workload)

    @pytest.mark.parametrize("key", ["u8", "i8", "f8"])
    def test_key_dtypes(self, key):
        fmt = RecordFormat(key, 32)
        run(4, 128, 8, fmt=fmt)

    def test_record_sizes(self):
        for size in (16, 64, 128):
            run(2, 128, 4, fmt=RecordFormat("u8", size))

    def test_minimum_shape(self):
        # s = P = 2, r = 2s² = 8: one round per pass.
        run(2, 8, 2)

    def test_single_processor(self):
        res, recs = run(1, 32, 4)
        assert res.comm_total["network_bytes"] == 0  # everything self-routed

    def test_more_disks_than_processors(self):
        cluster = ClusterConfig(p=2, d=8, mem_per_proc=2**10)
        recs = generate("uniform", FMT, 128 * 4, seed=1)
        res = sort_out_of_core("threaded", recs, cluster, FMT, buffer_records=128)
        assert res.passes == 3


class TestPassAccounting:
    def test_exactly_three_passes_of_io(self):
        res, recs = run(4, 512, 16)
        nbytes = len(recs) * FMT.record_size
        assert res.io["bytes_read"] == 3 * nbytes
        assert res.io["bytes_written"] == 3 * nbytes

    def test_io_per_pass_balanced(self):
        res, recs = run(4, 512, 16)
        nbytes = len(recs) * FMT.record_size
        assert len(res.io_per_pass) == 3
        for delta in res.io_per_pass:
            assert delta["bytes_read"] == nbytes
            assert delta["bytes_written"] == nbytes

    def test_deal_pass_network_volume(self):
        """Each round, each processor sends (P−1)/P of its r records
        over the network (paper §2)."""
        p, r, s = 4, 512, 16
        res, _ = run(p, r, s)
        per_round = (p - 1) * (r // p) * FMT.record_size
        rounds = s // p
        assert res.comm_per_pass[0]["network_bytes"] == per_round * rounds
        assert res.comm_per_pass[1]["network_bytes"] == per_round * rounds

    def test_total_comm_scales_with_ranks(self):
        res, recs = run(4, 512, 16)
        # All ranks combined move ~3 passes × (P−1)/P of the data, plus
        # the final pass's half exchanges; just check the magnitude.
        nbytes = len(recs) * FMT.record_size
        assert 1.5 * nbytes < res.comm_total["network_bytes"] < 4 * nbytes


class TestIntermediateStates:
    def test_pass1_realizes_steps_1_and_2_exactly(self, tmp_path):
        """Pass 1 writes exact positions, so its output must equal the
        in-core reference: step2(sort columns)."""
        p, r, s = 4, 128, 8
        cluster = ClusterConfig(p=p, mem_per_proc=2**10)
        recs = generate("uniform", FMT, r * s, seed=7)
        ws = make_workspace(cluster, FMT, recs, r, s, workdir=tmp_path)
        job = OocJob(cluster=cluster, fmt=FMT, n=r * s, buffer_records=r)
        result = threaded_columnsort_ooc(job, ws.input, keep_intermediates=True)
        t1 = ColumnStore(cluster, FMT, r, s, ws.disks, name="thr-t1")
        got = to_columns(t1.to_records(), r, s)
        ref = step2(sort_columns(to_columns(recs, r, s)))
        assert np.array_equal(got["key"], ref["key"])
        assert np.array_equal(got["uid"], ref["uid"])
        verify_output(result.output, recs)

    def test_pass2_column_sets_match_step4(self, tmp_path):
        """Pass 2 appends in arrival order, so only the per-column
        record *sets* must match the in-core reference."""
        from repro.matrix.permutations import step4

        p, r, s = 2, 128, 8
        cluster = ClusterConfig(p=p, mem_per_proc=2**10)
        recs = generate("uniform", FMT, r * s, seed=8)
        ws = make_workspace(cluster, FMT, recs, r, s, workdir=tmp_path)
        job = OocJob(cluster=cluster, fmt=FMT, n=r * s, buffer_records=r)
        threaded_columnsort_ooc(job, ws.input, keep_intermediates=True)
        t2 = ColumnStore(cluster, FMT, r, s, ws.disks, name="thr-t2")
        got = to_columns(t2.to_records(), r, s)
        ref = step4(sort_columns(step2(sort_columns(to_columns(recs, r, s)))))
        for j in range(s):
            assert np.array_equal(
                np.sort(got["uid"][:, j]), np.sort(ref["uid"][:, j])
            ), f"column {j} holds the wrong records"


class TestValidation:
    def test_shape_derivation(self):
        cluster = ClusterConfig(p=4, mem_per_proc=2**10)
        job = OocJob(cluster=cluster, fmt=FMT, n=8192, buffer_records=512)
        assert derive_shape(job) == (512, 16)

    def test_height_restriction_rejected(self):
        cluster = ClusterConfig(p=4, mem_per_proc=2**10)
        job = OocJob(cluster=cluster, fmt=FMT, n=512 * 32, buffer_records=512)
        with pytest.raises(DimensionError):
            derive_shape(job)

    def test_buffer_must_divide_n(self):
        cluster = ClusterConfig(p=4, mem_per_proc=2**12)
        job = OocJob(cluster=cluster, fmt=FMT, n=2**9, buffer_records=2**10)
        with pytest.raises(ConfigError, match="divide"):
            derive_shape(job)

    def test_fewer_columns_than_processors(self):
        cluster = ClusterConfig(p=8, mem_per_proc=2**12)
        job = OocJob(cluster=cluster, fmt=FMT, n=2**12 * 4, buffer_records=2**12)
        with pytest.raises(ConfigError, match="at least P"):
            derive_shape(job)

    def test_buffer_exceeding_memory(self):
        cluster = ClusterConfig(p=4, mem_per_proc=2**8)
        with pytest.raises(ConfigError, match="exceeds per-processor"):
            OocJob(cluster=cluster, fmt=FMT, n=2**12, buffer_records=2**9)

    def test_non_power_of_two_n(self):
        cluster = ClusterConfig(p=4, mem_per_proc=2**10)
        with pytest.raises(ConfigError):
            OocJob(cluster=cluster, fmt=FMT, n=1000, buffer_records=128)

    def test_store_shape_mismatch(self, tmp_path):
        cluster = ClusterConfig(p=2, mem_per_proc=2**10)
        recs = generate("uniform", FMT, 512, seed=1)
        ws = make_workspace(cluster, FMT, recs, 128, 4, workdir=tmp_path)
        job = OocJob(cluster=cluster, fmt=FMT, n=1024, buffer_records=128)
        with pytest.raises(ConfigError, match="input store"):
            threaded_columnsort_ooc(job, ws.input)


class TestOutputLayout:
    def test_output_is_pdm_striped(self):
        """The output store really is in PDM order: reading each disk's
        stripe file directly and interleaving reproduces the sorted
        sequence."""
        p, r, s = 4, 128, 8
        res, recs = run(p, r, s)
        pdm = res.output
        expected = FMT.sort(recs)
        n = len(recs)
        block = pdm.block
        for g in range(0, n, 97):  # sample positions
            from repro.disks.pdm import pdm_position

            disk, offset = pdm_position(g, block, pdm.cfg.virtual_disks)
            raw = pdm.disks[disk].read_at(
                f"output.pdm{disk:03d}", FMT.nbytes(offset), FMT.record_size
            )
            got = FMT.from_bytes(raw)
            assert got["key"][0] == expected["key"][g]
