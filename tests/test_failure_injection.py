"""Failure paths of full out-of-core runs: disk faults, disk-full, and
misbehaving rank programs must surface as structured errors, never
hangs or silent corruption."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.spmd import run_spmd
from repro.disks.matrixfile import ColumnStore
from repro.errors import DiskError, DiskFullError, SpmdError
from repro.oocs.base import OocJob, make_workspace
from repro.oocs.threaded import threaded_columnsort_ooc
from repro.records.format import RecordFormat
from repro.records.generators import generate

FMT = RecordFormat("u8", 64)


def setup_run(tmp_path, p=2, r=128, s=4):
    cluster = ClusterConfig(p=p, mem_per_proc=2**10)
    recs = generate("uniform", FMT, r * s, seed=1)
    ws = make_workspace(cluster, FMT, recs, r, s, workdir=tmp_path)
    job = OocJob(cluster=cluster, fmt=FMT, n=r * s, buffer_records=r)
    return cluster, recs, ws, job


class TestDiskFaults:
    def test_read_fault_propagates_with_failing_rank(self, tmp_path):
        cluster, recs, ws, job = setup_run(tmp_path)
        ws.disks[1].inject_fault("read")
        with pytest.raises(SpmdError) as exc_info:
            threaded_columnsort_ooc(job, ws.input)
        assert isinstance(exc_info.value.cause, DiskError)
        assert exc_info.value.rank == 1  # disk 1 belongs to rank 1

    def test_write_fault_propagates(self, tmp_path):
        cluster, recs, ws, job = setup_run(tmp_path)
        ws.disks[0].inject_fault("write")
        with pytest.raises(SpmdError) as exc_info:
            threaded_columnsort_ooc(job, ws.input)
        assert isinstance(exc_info.value.cause, DiskError)

    def test_fault_mid_run_does_not_hang(self, tmp_path):
        """Even when one rank dies halfway through a pass, the others
        unblock promptly (the shutdown path, exercised at full-run
        scale)."""
        import time

        cluster, recs, ws, job = setup_run(tmp_path, p=4, r=128, s=8)
        ws.disks[3].inject_fault("read")
        t0 = time.monotonic()
        with pytest.raises(SpmdError):
            threaded_columnsort_ooc(job, ws.input)
        assert time.monotonic() - t0 < 30


class TestDiskFull:
    def test_full_disk_aborts_run(self, tmp_path):
        from repro.disks.virtual_disk import VirtualDisk

        cluster = ClusterConfig(p=2, mem_per_proc=2**10)
        r, s = 128, 4
        recs = generate("uniform", FMT, r * s, seed=1)
        # Capacity fits the input but not the intermediates (the paper's
        # own runs were bounded by the 3× disk-space requirement).
        disks = [
            VirtualDisk(tmp_path / f"d{d}", disk_id=d,
                        capacity_bytes=FMT.nbytes(r * s // 2) + 100)
            for d in range(2)
        ]
        store = ColumnStore.from_records(cluster, FMT, recs, r, s, disks)
        job = OocJob(cluster=cluster, fmt=FMT, n=r * s, buffer_records=r)
        with pytest.raises(SpmdError) as exc_info:
            threaded_columnsort_ooc(job, store)
        assert isinstance(exc_info.value.cause, DiskFullError)


class TestRankMisbehavior:
    def test_store_access_from_wrong_rank(self, tmp_path):
        cluster, recs, ws, job = setup_run(tmp_path)

        def prog(comm):
            # Rank 0 tries to read rank 1's column.
            ws.input.read_column(comm.rank, (comm.rank + 1) % 2)

        with pytest.raises(SpmdError) as exc_info:
            run_spmd(2, prog, timeout=5)
        assert isinstance(exc_info.value.cause, DiskError)

    def test_input_preserved_after_failed_run(self, tmp_path):
        """A failed sort must not corrupt the input store (the paper
        kept inputs for verification; so do we)."""
        import numpy as np

        cluster, recs, ws, job = setup_run(tmp_path)
        ws.disks[0].inject_fault("write")
        with pytest.raises(SpmdError):
            threaded_columnsort_ooc(job, ws.input)
        assert np.array_equal(ws.input.to_records(), recs)
