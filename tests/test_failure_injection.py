"""Failure paths of full out-of-core runs: disk faults, disk-full, and
misbehaving rank programs must surface as structured errors, never
hangs or silent corruption — including when the fault fires inside a
read-ahead or write-behind pool thread rather than on the rank thread
itself."""

import threading
import time

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.spmd import run_spmd
from repro.disks.matrixfile import ColumnStore
from repro.errors import DiskError, DiskFullError, SpmdError
from repro.oocs.base import OocJob, make_workspace
from repro.oocs.threaded import threaded_columnsort_ooc
from repro.records.format import RecordFormat
from repro.records.generators import generate

FMT = RecordFormat("u8", 64)


def setup_run(tmp_path, p=2, r=128, s=4, pipeline_depth=0):
    cluster = ClusterConfig(p=p, mem_per_proc=2**10)
    recs = generate("uniform", FMT, r * s, seed=1)
    ws = make_workspace(cluster, FMT, recs, r, s, workdir=tmp_path)
    job = OocJob(cluster=cluster, fmt=FMT, n=r * s, buffer_records=r,
                 pipeline_depth=pipeline_depth)
    return cluster, recs, ws, job


def assert_no_new_threads(before: set, deadline_s: float = 5.0) -> None:
    """All threads spawned since ``before`` must wind down (pool workers
    join with a timeout, so poll rather than snapshot)."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        extra = set(threading.enumerate()) - before
        if not extra:
            return
        time.sleep(0.01)
    raise AssertionError(f"leaked threads: {set(threading.enumerate()) - before}")


class TestDiskFaults:
    def test_read_fault_propagates_with_failing_rank(self, tmp_path):
        cluster, recs, ws, job = setup_run(tmp_path)
        ws.disks[1].inject_fault("read")
        with pytest.raises(SpmdError) as exc_info:
            threaded_columnsort_ooc(job, ws.input)
        assert isinstance(exc_info.value.cause, DiskError)
        assert exc_info.value.rank == 1  # disk 1 belongs to rank 1

    def test_write_fault_propagates(self, tmp_path):
        cluster, recs, ws, job = setup_run(tmp_path)
        ws.disks[0].inject_fault("write")
        with pytest.raises(SpmdError) as exc_info:
            threaded_columnsort_ooc(job, ws.input)
        assert isinstance(exc_info.value.cause, DiskError)

    def test_fault_mid_run_does_not_hang(self, tmp_path):
        """Even when one rank dies halfway through a pass, the others
        unblock promptly (the shutdown path, exercised at full-run
        scale)."""
        import time

        cluster, recs, ws, job = setup_run(tmp_path, p=4, r=128, s=8)
        ws.disks[3].inject_fault("read")
        t0 = time.monotonic()
        with pytest.raises(SpmdError):
            threaded_columnsort_ooc(job, ws.input)
        assert time.monotonic() - t0 < 30


class TestDiskFull:
    def test_full_disk_aborts_run(self, tmp_path):
        from repro.disks.virtual_disk import VirtualDisk

        cluster = ClusterConfig(p=2, mem_per_proc=2**10)
        r, s = 128, 4
        recs = generate("uniform", FMT, r * s, seed=1)
        # Capacity fits the input but not the intermediates (the paper's
        # own runs were bounded by the 3× disk-space requirement).
        disks = [
            VirtualDisk(tmp_path / f"d{d}", disk_id=d,
                        capacity_bytes=FMT.nbytes(r * s // 2) + 100)
            for d in range(2)
        ]
        store = ColumnStore.from_records(cluster, FMT, recs, r, s, disks)
        job = OocJob(cluster=cluster, fmt=FMT, n=r * s, buffer_records=r)
        with pytest.raises(SpmdError) as exc_info:
            threaded_columnsort_ooc(job, store)
        assert isinstance(exc_info.value.cause, DiskFullError)


class TestFaultsThroughPipelineThreads:
    """The same injections as above, but with the pass pipeline enabled:
    the fault fires inside a pool worker and must surface as the same
    exception type, shut the SPMD world down, and leak no threads."""

    @pytest.mark.parametrize("depth", [1, 2])
    def test_read_fault_through_prefetcher(self, tmp_path, depth):
        before = set(threading.enumerate())
        cluster, recs, ws, job = setup_run(tmp_path, pipeline_depth=depth)
        ws.disks[1].inject_fault("read")
        with pytest.raises(SpmdError) as exc_info:
            threaded_columnsort_ooc(job, ws.input)
        assert isinstance(exc_info.value.cause, DiskError)
        assert exc_info.value.rank == 1
        assert_no_new_threads(before)

    @pytest.mark.parametrize("depth", [1, 2])
    def test_write_fault_through_flusher(self, tmp_path, depth):
        before = set(threading.enumerate())
        cluster, recs, ws, job = setup_run(tmp_path, pipeline_depth=depth)
        ws.disks[0].inject_fault("write")
        with pytest.raises(SpmdError) as exc_info:
            threaded_columnsort_ooc(job, ws.input)
        assert isinstance(exc_info.value.cause, DiskError)
        assert_no_new_threads(before)

    def test_disk_full_through_flusher(self, tmp_path):
        from repro.disks.virtual_disk import VirtualDisk

        before = set(threading.enumerate())
        cluster = ClusterConfig(p=2, mem_per_proc=2**10)
        r, s = 128, 4
        recs = generate("uniform", FMT, r * s, seed=1)
        disks = [
            VirtualDisk(tmp_path / f"d{d}", disk_id=d,
                        capacity_bytes=FMT.nbytes(r * s // 2) + 100)
            for d in range(2)
        ]
        store = ColumnStore.from_records(cluster, FMT, recs, r, s, disks)
        job = OocJob(cluster=cluster, fmt=FMT, n=r * s, buffer_records=r,
                     pipeline_depth=2)
        with pytest.raises(SpmdError) as exc_info:
            threaded_columnsort_ooc(job, store)
        assert isinstance(exc_info.value.cause, DiskFullError)
        assert_no_new_threads(before)

    def test_input_preserved_after_pipelined_failure(self, tmp_path):
        import numpy as np

        cluster, recs, ws, job = setup_run(tmp_path, pipeline_depth=2)
        ws.disks[0].inject_fault("write")
        with pytest.raises(SpmdError):
            threaded_columnsort_ooc(job, ws.input)
        assert np.array_equal(ws.input.to_records(), recs)


class TestRankMisbehavior:
    def test_store_access_from_wrong_rank(self, tmp_path):
        cluster, recs, ws, job = setup_run(tmp_path)

        def prog(comm):
            # Rank 0 tries to read rank 1's column.
            ws.input.read_column(comm.rank, (comm.rank + 1) % 2)

        with pytest.raises(SpmdError) as exc_info:
            run_spmd(2, prog, timeout=5)
        assert isinstance(exc_info.value.cause, DiskError)

    def test_input_preserved_after_failed_run(self, tmp_path):
        """A failed sort must not corrupt the input store (the paper
        kept inputs for verification; so do we)."""
        import numpy as np

        cluster, recs, ws, job = setup_run(tmp_path)
        ws.disks[0].inject_fault("write")
        with pytest.raises(SpmdError):
            threaded_columnsort_ooc(job, ws.input)
        assert np.array_equal(ws.input.to_records(), recs)
