"""RecordFormat: layout, constructors, serialization, sorting helpers."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.records.format import RecordFormat


class TestLayout:
    def test_itemsize_matches_record_size(self):
        for size in (16, 32, 64, 128):
            assert RecordFormat("u8", size).dtype.itemsize == size

    def test_minimum_record_size_is_key_plus_uid(self):
        assert RecordFormat("u8", 16).dtype.itemsize == 16
        with pytest.raises(ConfigError):
            RecordFormat("u8", 15)

    def test_u4_key_allows_smaller_records(self):
        fmt = RecordFormat("u4", 12)
        assert fmt.dtype.itemsize == 12
        assert fmt.key_dtype == np.dtype("<u4")

    def test_fields_present(self):
        fmt = RecordFormat("i8", 64)
        assert set(fmt.dtype.names) == {"key", "uid", "pad"}

    def test_no_pad_field_when_exact(self):
        fmt = RecordFormat("u8", 16)
        assert set(fmt.dtype.names) == {"key", "uid"}

    def test_unknown_key_dtype_rejected(self):
        with pytest.raises(TypeError):
            RecordFormat("u16", 64)

    def test_nbytes_and_count_roundtrip(self):
        fmt = RecordFormat("u8", 64)
        assert fmt.nbytes(10) == 640
        assert fmt.count(640) == 10
        with pytest.raises(ConfigError):
            fmt.count(641)


class TestConstructors:
    def test_make_stamps_sequential_uids(self):
        fmt = RecordFormat("u8", 32)
        recs = fmt.make(np.array([5, 3, 9], dtype=np.uint64))
        assert list(recs["uid"]) == [0, 1, 2]
        assert list(recs["key"]) == [5, 3, 9]

    def test_make_with_explicit_uids(self):
        fmt = RecordFormat("u8", 32)
        recs = fmt.make(np.array([1, 2]), uids=np.array([7, 8]))
        assert list(recs["uid"]) == [7, 8]

    def test_empty(self):
        fmt = RecordFormat("u8", 64)
        assert len(fmt.empty(5)) == 5
        assert fmt.empty(0).dtype == fmt.dtype

    def test_pads_have_extreme_keys(self):
        fmt = RecordFormat("u8", 32)
        assert np.all(fmt.pad_low(4)["key"] == 0)
        assert np.all(fmt.pad_high(4)["key"] == np.iinfo(np.uint64).max)

    def test_float_pads_are_infinite(self):
        fmt = RecordFormat("f8", 32)
        assert np.all(np.isneginf(fmt.pad_low(3)["key"]))
        assert np.all(np.isposinf(fmt.pad_high(3)["key"]))

    def test_signed_pads(self):
        fmt = RecordFormat("i8", 32)
        info = np.iinfo(np.int64)
        assert np.all(fmt.pad_low(2)["key"] == info.min)
        assert np.all(fmt.pad_high(2)["key"] == info.max)


class TestSerialization:
    def test_roundtrip(self):
        fmt = RecordFormat("u8", 64)
        recs = fmt.make(np.arange(100, dtype=np.uint64))
        back = fmt.from_bytes(fmt.to_bytes(recs))
        assert np.array_equal(back, recs)

    def test_byte_length_exact(self):
        fmt = RecordFormat("u8", 64)
        assert len(fmt.to_bytes(fmt.empty(7))) == 7 * 64

    def test_from_bytes_returns_writable_copy(self):
        fmt = RecordFormat("u8", 32)
        recs = fmt.from_bytes(fmt.to_bytes(fmt.make(np.array([1, 2]))))
        recs["key"][0] = 99  # must not raise (frombuffer alone is read-only)
        assert recs["key"][0] == 99


class TestSorting:
    def test_sort_is_by_key(self):
        fmt = RecordFormat("u8", 32)
        recs = fmt.make(np.array([3, 1, 2], dtype=np.uint64))
        out = fmt.sort(recs)
        assert list(out["key"]) == [1, 2, 3]
        assert list(out["uid"]) == [1, 2, 0]

    def test_sort_is_stable(self):
        fmt = RecordFormat("u8", 32)
        keys = np.array([1, 0, 1, 0, 1], dtype=np.uint64)
        out = fmt.sort(fmt.make(keys))
        # Equal keys keep their original relative order (by uid).
        assert list(out["uid"]) == [1, 3, 0, 2, 4]

    def test_is_sorted(self):
        fmt = RecordFormat("u8", 32)
        assert fmt.is_sorted(fmt.make(np.array([1, 1, 2])))
        assert not fmt.is_sorted(fmt.make(np.array([2, 1])))
        assert fmt.is_sorted(fmt.empty(0))
        assert fmt.is_sorted(fmt.make(np.array([5])))
