"""The SPMD launcher: results, failures, per-rank arguments."""

import threading

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.spmd import run_spmd
from repro.errors import CommError, ConfigError, SpmdError


class TestLaunch:
    def test_returns_in_rank_order(self):
        res = run_spmd(4, lambda comm: comm.rank * 10)
        assert res.returns == [0, 10, 20, 30]

    def test_shared_args(self):
        res = run_spmd(2, lambda comm, a, b: a + b + comm.rank, 100, b=1)
        assert res.returns == [101, 102]

    def test_rank_args(self):
        res = run_spmd(
            3, lambda comm, extra: (comm.rank, extra), rank_args=[("a",), ("b",), ("c",)]
        )
        assert res.returns == [(0, "a"), (1, "b"), (2, "c")]

    def test_rank_args_wrong_length(self):
        with pytest.raises(ConfigError):
            run_spmd(3, lambda comm: None, rank_args=[()])

    def test_zero_ranks_rejected(self):
        with pytest.raises(ConfigError):
            run_spmd(0, lambda comm: None)

    def test_single_rank_runs_inline(self):
        main_thread = threading.current_thread()

        def prog(comm):
            return threading.current_thread() is main_thread

        assert run_spmd(1, prog).returns == [True]

    def test_multi_rank_runs_on_threads(self):
        def prog(comm):
            return threading.current_thread().name

        names = run_spmd(3, prog).returns
        assert names == [f"spmd-rank-{p}" for p in range(3)]

    def test_ranks_actually_communicate(self):
        def prog(comm):
            total = comm.allreduce(np.array([comm.rank]))
            return int(total[0])

        assert run_spmd(5, prog).returns == [10] * 5


class TestFailures:
    def test_failure_carries_rank_and_cause(self):
        def prog(comm):
            if comm.rank == 2:
                raise ValueError("kapow")
            comm.barrier()

        with pytest.raises(SpmdError) as exc_info:
            run_spmd(4, prog, timeout=5)
        assert exc_info.value.rank == 2
        assert isinstance(exc_info.value.cause, ValueError)

    def test_failure_unblocks_waiting_ranks_quickly(self):
        """Ranks blocked in recv are released by the shutdown, not the
        full deadlock timeout."""
        import time

        def prog(comm):
            if comm.rank == 0:
                raise RuntimeError("early death")
            comm.recv(source=0)

        t0 = time.monotonic()
        with pytest.raises(SpmdError):
            run_spmd(3, prog, timeout=60)
        assert time.monotonic() - t0 < 10

    def test_collateral_comm_errors_not_reported_as_primary(self):
        def prog(comm):
            if comm.rank == 1:
                raise KeyError("root cause")
            comm.recv(source=1)

        with pytest.raises(SpmdError) as exc_info:
            run_spmd(2, prog, timeout=5)
        assert exc_info.value.rank == 1
        assert isinstance(exc_info.value.cause, KeyError)

    def test_deadlock_times_out(self):
        def prog(comm):
            comm.recv(source=(comm.rank + 1) % comm.size)  # everyone waits

        with pytest.raises(SpmdError) as exc_info:
            run_spmd(2, prog, timeout=0.5)
        assert isinstance(exc_info.value.cause, CommError)


class TestStatsAggregation:
    def test_result_totals(self):
        def prog(comm):
            comm.send(np.zeros(8, dtype=np.int64), dest=(comm.rank + 1) % comm.size)
            comm.recv(source=(comm.rank - 1) % comm.size)

        res = run_spmd(4, prog)
        assert res.total_network_messages() == 4
        assert res.total_network_bytes() == 4 * 64


class TestClusterConfig:
    def test_defaults(self):
        cfg = ClusterConfig(p=4)
        assert cfg.d == 4
        assert cfg.m == 4 * 2**20

    def test_virtual_disks_when_fewer_physical(self):
        cfg = ClusterConfig(p=8, d=2, mem_per_proc=2**10)
        assert cfg.virtual_disks == 8
        assert cfg.disks_per_proc == 1

    def test_disks_of_round_robin(self):
        cfg = ClusterConfig(p=2, d=8, mem_per_proc=2**10)
        assert list(cfg.disks_of(0)) == [0, 2, 4, 6]
        assert list(cfg.disks_of(1)) == [1, 3, 5, 7]

    def test_owners(self):
        cfg = ClusterConfig(p=4, d=4, mem_per_proc=2**10)
        assert cfg.owner_of_disk(3) == 3
        assert cfg.owner_of_column(6) == 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            ClusterConfig(p=3)
        with pytest.raises(ConfigError):
            ClusterConfig(p=4, d=6)
        with pytest.raises(ConfigError):
            ClusterConfig(p=4, mem_per_proc=1000)
        with pytest.raises(ConfigError):
            ClusterConfig(p=2).check_rank(2)
        with pytest.raises(ConfigError):
            ClusterConfig(p=2).owner_of_disk(5)
