"""The service daemon end to end: protocol ops, tenancy, priority
scheduling, and graceful drain (including a real SIGTERM)."""

from __future__ import annotations

import os
import signal
import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro.errors import JobNotFound, ServiceError
from repro.service import ServiceClient, SortService, TenantPolicy
from repro.service.journal import JobJournal

#: A fast known-good job (~0.5 s on the thread backend).
SPEC = {"records": 4096, "buffer": 512, "processors": 4}

#: A longer valid job (s = n/r must keep r >= 2s²) for cancel/drain races.
SPEC_LONG = {"records": 16384, "buffer": 2048, "processors": 4}


@pytest.fixture
def service_root():
    """A service root whose socket path stays under the AF_UNIX limit
    (pytest's tmp_path can exceed it)."""
    with tempfile.TemporaryDirectory(prefix="svc-", dir="/tmp") as root:
        yield Path(root)


def _start(root, **kwargs):
    service = SortService(root, **kwargs)
    service.start()
    return service


def test_submit_runs_to_done_with_result_schema(service_root):
    service = _start(service_root, workers=2)
    try:
        with ServiceClient(service.socket_path) as client:
            sub = client.submit(SPEC, key="k1")
            assert sub["state"] == "admitted" and not sub["duplicate"]
            final = client.wait(sub["job"], timeout_s=120)
            assert final["state"] == "done"
            result = final["result"]
            assert result["schema"] == "repro.sort-result/1"
            assert result["verified"] is True
            assert len(result["output_digest"]) == 64
            assert result["passes"] == 3
            assert final["passes_done"] == result["passes"]
            assert final["attempts"] == 1
    finally:
        service.stop()


def test_duplicate_key_dedupes_onto_one_job(service_root):
    service = _start(service_root, workers=1)
    try:
        with ServiceClient(service.socket_path) as client:
            first = client.submit(SPEC, key="same")
            second = client.submit(SPEC, key="same")
            assert second["job"] == first["job"]
            assert second["duplicate"] is True
            client.wait(first["job"], timeout_s=120)
    finally:
        service.stop()


def test_unknown_job_raises_job_not_found(service_root):
    service = _start(service_root)
    try:
        with ServiceClient(service.socket_path) as client:
            with pytest.raises(JobNotFound):
                client.status("j999999")
            with pytest.raises(JobNotFound):
                client.result("j999999")
    finally:
        service.stop()


def test_invalid_spec_rejected_and_not_journaled(service_root):
    service = _start(service_root)
    try:
        with ServiceClient(service.socket_path) as client:
            with pytest.raises(ServiceError, match="unknown algorithm"):
                client.submit({"algorithm": "quicksort"})
            with pytest.raises(ServiceError, match="unknown job-spec field"):
                client.submit({"nope": 1})
            assert client.health()["jobs"] == {}
    finally:
        service.stop()
    journal = JobJournal(service_root / "journal.log")
    events, _ = journal.replay()
    assert events == []  # a rejected submit leaves no durable trace
    journal.close()


def test_cancel_queued_job_never_runs(service_root):
    service = _start(service_root, workers=1)
    try:
        with ServiceClient(service.socket_path) as client:
            running = client.submit(SPEC)["job"]
            queued = client.submit(SPEC)["job"]
            cancelled = client.cancel(queued, reason="changed my mind")
            assert cancelled["state"] == "cancelled"
            final = client.result(queued)
            assert final["state"] == "cancelled"
            assert final["cancel_reason"] == "changed my mind"
            assert final["attempts"] == 0
            assert client.wait(running, timeout_s=120)["state"] == "done"
            # cancel of a terminal job is a no-op, not an error
            assert client.cancel(queued)["state"] == "cancelled"
    finally:
        service.stop()


def test_cancel_running_job_reaches_terminal_cancelled(service_root):
    service = _start(service_root, workers=1)
    try:
        with ServiceClient(service.socket_path) as client:
            job = client.submit(SPEC_LONG)["job"]
            deadline = time.monotonic() + 60
            while client.status(job)["state"] not in ("running", "checkpointed"):
                assert time.monotonic() < deadline
                time.sleep(0.02)
            ack = client.cancel(job)
            assert ack.get("cancelling") or ack["state"] == "cancelled"
            final = client.wait(job, timeout_s=60)
            assert final["state"] == "cancelled"
    finally:
        service.stop()


def test_tenant_queue_quota_sheds_submits(service_root):
    service = _start(
        service_root, workers=1,
        tenants={"small": TenantPolicy(max_queued=1)},
    )
    try:
        with ServiceClient(service.socket_path) as client:
            first = client.submit(SPEC, tenant="small")["job"]
            client.submit(SPEC, tenant="small")  # fills the queue slot
            with pytest.raises(ServiceError, match="queue full"):
                client.submit(SPEC, tenant="small")
            # another tenant is unaffected by small's quota
            other = client.submit(SPEC, tenant="big")["job"]
            for job in (first, other):
                client.wait(job, timeout_s=120)
    finally:
        service.stop()


def test_priority_tenant_runs_first(service_root):
    service = _start(
        service_root, workers=1,
        tenants={"vip": TenantPolicy(priority=10)},
    )
    try:
        with ServiceClient(service.socket_path) as client:
            blocker = client.submit(SPEC)["job"]
            low = client.submit(SPEC, tenant="default")["job"]
            high = client.submit(SPEC, tenant="vip")["job"]
            for job in (blocker, low, high):
                client.wait(job, timeout_s=120)
    finally:
        service.stop()
    journal = JobJournal(service_root / "journal.log")
    events, _ = journal.replay()
    journal.close()
    started = [e["job"] for e in events if e["kind"] == "running"]
    assert started.index(high) < started.index(low)


def test_drain_rejects_new_submits_and_finishes_inflight(service_root):
    service = _start(service_root, workers=1)
    try:
        with ServiceClient(service.socket_path) as client:
            job = client.submit(SPEC)["job"]
            drained = client.drain(deadline_s=120)
            assert drained["drained_clean"] is True
            assert drained["interrupted"] == []
            assert client.result(job)["state"] == "done"
            with pytest.raises(ServiceError, match="draining"):
                client.submit(SPEC)
    finally:
        service.stop()
    journal = JobJournal(service_root / "journal.log")
    events, _ = journal.replay()
    journal.close()
    assert any(e["kind"] == "drain" for e in events)


def test_drain_deadline_interrupts_but_keeps_job_resumable(service_root):
    service = _start(service_root, workers=1, drain_timeout_s=0.05)
    try:
        with ServiceClient(service.socket_path) as client:
            job = client.submit(SPEC_LONG)["job"]
            deadline = time.monotonic() + 60
            while client.status(job)["state"] not in ("running", "checkpointed"):
                assert time.monotonic() < deadline
                time.sleep(0.02)
            drained = client.drain(deadline_s=0.05)
            assert drained["drained_clean"] is False
            assert drained["interrupted"] == [job]
            # No terminal event was journaled: the job is still
            # running/checkpointed, i.e. resumable by the next daemon.
            state = client.status(job)["state"]
            assert state in ("running", "checkpointed")
    finally:
        service.stop()
    restarted = SortService(service_root, workers=1)
    restarted.start()
    try:
        assert restarted._recovered["resumed"] == [job]
        with ServiceClient(restarted.socket_path) as client:
            final = client.wait(job, timeout_s=120)
            assert final["state"] == "done"
            assert final["attempts"] == 2
    finally:
        restarted.stop()


def test_sigterm_drains_and_stops(service_root):
    """A real SIGTERM to this process: the installed handler drains the
    service (in-flight job finishes) and stops it."""
    service = _start(service_root, workers=1, drain_timeout_s=120)
    old_term = signal.getsignal(signal.SIGTERM)
    old_int = signal.getsignal(signal.SIGINT)
    try:
        service.install_signal_handlers()
        with ServiceClient(service.socket_path) as client:
            job = client.submit(SPEC)["job"]
        os.kill(os.getpid(), signal.SIGTERM)
        assert service.stopped.wait(timeout=120)
    finally:
        signal.signal(signal.SIGTERM, old_term)
        signal.signal(signal.SIGINT, old_int)
        service.stop()
    journal = JobJournal(service_root / "journal.log")
    events, _ = journal.replay()
    journal.close()
    by_kind = {}
    for event in events:
        by_kind.setdefault(event["kind"], []).append(event)
    assert "drain" in by_kind
    assert by_kind["done"][0]["job"] == job


def test_stop_joins_all_service_threads(service_root):
    before = {t.name for t in threading.enumerate()}
    service = _start(service_root, workers=3)
    with ServiceClient(service.socket_path) as client:
        client.health()
    service.stop()
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        lingering = [
            t.name for t in threading.enumerate()
            if t.name.startswith("service-") and t.name not in before
        ]
        if not lingering:
            break
        time.sleep(0.05)
    assert not lingering


def test_second_daemon_on_same_root_is_refused(service_root):
    service = _start(service_root)
    try:
        with pytest.raises(ServiceError, match="another daemon"):
            SortService(service_root, socket_path=service_root / "other.sock").start()
    finally:
        service.stop()


def test_socket_path_length_guard(service_root):
    too_long = service_root / ("x" * 120)
    with pytest.raises(ServiceError, match="AF_UNIX"):
        SortService(service_root, socket_path=too_long)


def test_client_reconnects_after_daemon_restart(service_root):
    service = _start(service_root)
    client = ServiceClient(service.socket_path, retries=8, backoff_s=0.05)
    try:
        job = client.submit(SPEC, key="kr")["job"]
        client.wait(job, timeout_s=120)
        service.stop()  # severs the client's connection
        service = _start(service_root)
        # same client object, same key: reconnect + idempotent dedupe
        again = client.submit(SPEC, key="kr")
        assert again["job"] == job and again["duplicate"] is True
        assert client.result(job)["state"] == "done"
    finally:
        client.close()
        service.stop()
