"""The experiment harness: Figure 2 and the tables."""

import pytest

from repro.experiments.figure2 import (
    BUFFER_SIZES,
    FIGURE2_POINTS,
    figure2_claims,
    figure2_series,
    render_figure2,
)
from repro.experiments.runner import full_report
from repro.experiments.tables import (
    bounds_table,
    coverage_table,
    crossover_table,
    msgcount_table,
    render_table,
)


@pytest.fixture(scope="module")
def series():
    return figure2_series()


class TestFigure2:
    def test_every_paper_claim_holds(self, series):
        claims = figure2_claims(series)
        failing = [name for name, ok in claims.items() if not ok]
        assert not failing, f"claims violated: {failing}"

    def test_eight_series(self, series):
        assert len(series) == 8
        labels = {s.label for s in series}
        assert "Baseline I/O time, 3 passes" in labels
        assert "M-columnsort, buffer size = 2^25" in labels

    def test_point_universe(self):
        assert sorted({gb for gb, _ in FIGURE2_POINTS}) == [4, 8, 16, 32]
        assert BUFFER_SIZES == (2**24, 2**25)

    def test_baselines_cover_all_sizes(self, series):
        for s in series:
            if s.algorithm.startswith("baseline"):
                assert [gb for gb, _ in s.points] == [4, 8, 16, 32]

    def test_render_contains_all_series(self, series):
        text = render_figure2(series)
        for s in series:
            assert s.label in text
        assert "secs per (GB/processor)" in text

    def test_values_in_plot_range(self, series):
        """The paper's y-axis runs 0-600 — our regenerated values must
        live on the same plot."""
        for s in series:
            for _, y in s.points:
                assert 250 < y < 600


class TestTables:
    def test_bounds_rows(self):
        rows = bounds_table()
        assert all(
            row["threaded (1)"] < row["subblock (2)"] < row["M-columnsort (3)"]
            for row in rows
        )

    def test_crossover_rows_self_check(self):
        for row in crossover_table():
            assert row["M below ⇒ m wins"] is True
            assert row["M above ⇒ subblock wins"] is True

    def test_msgcount_rows(self):
        rows = msgcount_table()
        by_key = {(r["s"], r["P"]): r for r in rows}
        assert by_key[(16, 4)]["messages/round (⌈P/√s⌉)"] == 1
        assert by_key[(16, 4)]["network-free"] is True
        assert (16, 32) not in by_key  # P > s is not a legal cluster shape
        assert by_key[(64, 32)]["messages/round (⌈P/√s⌉)"] == 4
        assert all(
            r["messages/round (⌈P/√s⌉)"] <= r["deal pass sends"] for r in rows
        )

    def test_coverage_rows(self):
        rows = coverage_table()
        by_key = {(r["buffer"], r["algorithm"]): r["eligible sizes (GB)"] for r in rows}
        assert by_key[("2^24", "subblock")] == "1, 4, 16"
        assert by_key[("2^25", "subblock")] == "2, 8, 32"
        assert by_key[("2^24", "m")] == "1, 2, 4, 8, 16, 32, 64"

    def test_render_table(self):
        text = render_table([{"a": 1, "b": 2.5}, {"a": 10, "b": True}])
        assert "a" in text and "10" in text and "yes" in text
        assert render_table([]) == "(no rows)"

    def test_render_formats_large_powers(self):
        text = render_table([{"x": 2**34}, {"x": 2**34 + 1}])
        assert "2^34" in text


class TestFullReport:
    def test_report_sections(self):
        text = full_report()
        assert "Figure 2" in text
        assert "T-bounds" in text
        assert "T-crossover" in text
        assert "T-msgcount" in text
        assert "[FAIL]" not in text
