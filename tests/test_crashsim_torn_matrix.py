"""Torn-write matrices for the two byte-plane artifacts power loss can
tear: block-checksum sidecars and XOR parity rows.

The crashsim sweep enumerates torn states organically; these matrices
pin the exhaustive cut-point behavior down deterministically — every
prefix length of a sidecar and every sector cut of a parity row — and
assert the one claim that matters: torn metadata degrades to *detection
or refusal*, never to silently wrong bytes.
"""

from __future__ import annotations

import shutil

import pytest

from repro.crashsim.cache import SECTOR
from repro.disks.virtual_disk import VirtualDisk
from repro.durability.checksums import BlockChecksums
from repro.durability.parity import attach_durability
from repro.errors import CorruptionError, DiskError, ReproError


def _fresh_copy(src, dst):
    shutil.copytree(src, dst)
    return dst


# ---------------------------------------------------------------------------
# sidecar matrix
# ---------------------------------------------------------------------------


class TestSidecarTornMatrix:
    @pytest.fixture
    def disk_root(self, tmp_path):
        disk = VirtualDisk(tmp_path / "d0", disk_id=0)
        disk.write_at("obj.x", 0, b"P" * 1024)
        disk.write_at("obj.x", 1024, b"Q" * 1024)
        disk.sync()
        return tmp_path / "d0"

    def _cuts(self, nbytes: int) -> list[int]:
        cuts = {0, 1, nbytes // 2, nbytes - 1}
        cuts.update(range(SECTOR, nbytes, SECTOR))
        return sorted(c for c in cuts if 0 <= c < nbytes)

    def test_torn_sidecar_never_crashes_or_fabricates_extents(
        self, disk_root, tmp_path
    ):
        sidecar = disk_root / ".meta" / "obj.x.json"
        original = sidecar.read_bytes()
        reference = BlockChecksums(disk_root).extents("obj.x")
        assert reference  # the matrix must exercise a real catalog
        for cut in self._cuts(len(original)):
            root = _fresh_copy(disk_root, tmp_path / f"cut{cut}")
            (root / ".meta" / "obj.x.json").write_bytes(original[:cut])
            catalog = BlockChecksums(root)
            got = catalog.extents("obj.x")
            # A torn sidecar is discarded wholesale (unparseable JSON)
            # — it must never load as a partial or mutated catalog.
            assert got in ([], reference), f"cut at {cut} fabricated {got}"

    def test_torn_sidecar_with_intact_data_still_reads_correctly(
        self, disk_root, tmp_path
    ):
        original = (disk_root / ".meta" / "obj.x.json").read_bytes()
        for cut in self._cuts(len(original)):
            root = _fresh_copy(disk_root, tmp_path / f"cut{cut}")
            (root / ".meta" / "obj.x.json").write_bytes(original[:cut])
            disk = VirtualDisk(root, disk_id=0)
            assert disk.read_at("obj.x", 0, 1024) == b"P" * 1024

    def test_torn_data_with_intact_sidecar_is_detected(
        self, disk_root, tmp_path
    ):
        data = (disk_root / "obj.x").read_bytes()
        for cut in self._cuts(len(data)):
            root = _fresh_copy(disk_root, tmp_path / f"cut{cut}")
            (root / "obj.x").write_bytes(data[:cut])
            disk = VirtualDisk(root, disk_id=0)
            with pytest.raises((CorruptionError, DiskError)):
                disk.read_at("obj.x", 0, 1024)
                disk.read_at("obj.x", 1024, 1024)

    def test_sync_reports_flushed_sidecars(self, tmp_path):
        disk = VirtualDisk(tmp_path / "d", disk_id=0)
        disk.write_at("obj.a", 0, b"a" * 64)
        disk.write_at("obj.b", 0, b"b" * 64)
        assert disk.checksums.sync() == 2
        assert disk.checksums.sync() == 0  # barrier drained the dirty set


# ---------------------------------------------------------------------------
# parity-row matrix
# ---------------------------------------------------------------------------


class TestParityTornMatrix:
    EXTENT = 600

    @pytest.fixture
    def array(self, tmp_path):
        disks = [VirtualDisk(tmp_path / f"d{i}", disk_id=i) for i in range(3)]
        attach_durability(disks, parity=True)
        for i, disk in enumerate(disks):
            disk.write_at(f"obj.{i}", 0, bytes([65 + i]) * self.EXTENT)
        return disks

    def _corrupt_member(self, disks) -> tuple:
        """Flip bytes of one member extent on disk, bypassing the
        catalog, and return ``(disk, name)``."""
        victim = disks[1]
        path = victim.root / "obj.1"
        blob = bytearray(path.read_bytes())
        blob[: self.EXTENT] = b"!" * self.EXTENT
        path.write_bytes(bytes(blob))
        return victim, "obj.1"

    def _parity_row_of(self, disks, disk_id: int, name: str):
        layer = disks[0].parity_layer
        ext = layer._extents[(disk_id, name)][0]
        return layer._parity_path(ext.row)

    def test_intact_parity_repairs_the_member(self, array):
        """With an intact parity row the read self-heals: ``_run_op``
        catches the repairable CorruptionError, rebuilds the extent from
        parity, and retries — the caller sees the true bytes."""
        victim, name = self._corrupt_member(array)
        assert victim.read_at(name, 0, self.EXTENT) == b"B" * self.EXTENT
        assert victim.stats.checksum_failures >= 1  # detection happened
        # and the repair landed on the medium, not just in the response
        assert (victim.root / name).read_bytes()[: self.EXTENT] == (
            b"B" * self.EXTENT
        )

    def test_torn_parity_row_refuses_instead_of_fabricating(self, array):
        victim, name = self._corrupt_member(array)
        row_path = self._parity_row_of(array, victim.disk_id, name)
        original = row_path.read_bytes()
        layer = array[0].parity_layer
        cuts = sorted(
            {0, 1, len(original) // 2, len(original) - 1}
            | set(range(SECTOR, len(original), SECTOR))
        )
        for cut in (c for c in cuts if c < len(original)):
            row_path.write_bytes(original[:cut])
            with pytest.raises((DiskError, CorruptionError)):
                layer.repair(victim, name, [(0, self.EXTENT)])
            # the member was not silently "repaired" with garbage
            assert (victim.root / name).read_bytes()[: self.EXTENT] == (
                b"!" * self.EXTENT
            )
        row_path.write_bytes(original)
        assert layer.repair(victim, name, [(0, self.EXTENT)]) == 1

    def test_bitflipped_parity_row_fails_the_crc_not_the_data(self, array):
        """Same length, wrong bytes: reconstruction XORs to garbage and
        the catalog CRC must refuse it before anything is written."""
        victim, name = self._corrupt_member(array)
        row_path = self._parity_row_of(array, victim.disk_id, name)
        blob = bytearray(row_path.read_bytes())
        blob[0] ^= 0xFF
        row_path.write_bytes(bytes(blob))
        layer = array[0].parity_layer
        with pytest.raises(CorruptionError) as err:
            layer.repair(victim, name, [(0, self.EXTENT)])
        assert not err.value.repairable
        assert (victim.root / name).read_bytes()[: self.EXTENT] == (
            b"!" * self.EXTENT
        )

    def test_fresh_attach_clears_stale_parity(self, array, tmp_path):
        """A restarted process must not trust (or trip over) parity rows
        from the previous life — crash states leave them torn."""
        row = self._parity_row_of(array, 1, "obj.1")
        copy = tmp_path / "copy"
        for i in range(3):
            shutil.copytree(array[i].root, copy / f"d{i}")
        torn = copy / "d0" / ".parity" / row.name
        if torn.exists():
            torn.write_bytes(torn.read_bytes()[:7])
        disks = [VirtualDisk(copy / f"d{i}", disk_id=i) for i in range(3)]
        attach_durability(disks, parity=True)
        for i in range(3):
            pdir = copy / f"d{i}" / ".parity"
            assert not pdir.is_dir() or list(pdir.iterdir()) == []
        for i, disk in enumerate(disks):
            assert disk.read_at(f"obj.{i}", 0, self.EXTENT) == (
                bytes([65 + i]) * self.EXTENT
            )
