"""Property-based tests (hypothesis) on the core invariants.

Strategies draw random legal configurations *and* random data, so these
cover corners the parametrized tests don't enumerate: extreme keys,
degenerate shapes, every (r, s, P) interaction.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import available_backends
from repro.cluster.spmd import run_spmd
from repro.columnsort.basic import columnsort
from repro.columnsort.subblock import subblock_columnsort
from repro.matrix.layout import from_columns, is_sorted_column_major, to_columns
from repro.oocs.api import sort_out_of_core
from repro.oocs.incore.columnsort_dist import distributed_columnsort
from repro.records.format import RecordFormat

FMT = RecordFormat("u8", 16)

# -- strategies -------------------------------------------------------------

#: Legal basic-columnsort shapes: s | r, r ≥ 2s².
basic_shapes = st.sampled_from(
    [(2, 1), (8, 2), (18, 3), (32, 4), (50, 5), (128, 8), (512, 16)]
)

#: Legal subblock shapes (s a power of 4, r ≥ 4·s^(3/2)); several are
#: illegal for basic columnsort.
subblock_shapes = st.sampled_from([(4, 1), (32, 4), (64, 4), (256, 16), (320, 16)])

#: Random key arrays are drawn via a (seed, key-space) pair rather than
#: element-by-element lists — hypothesis shrinks the seed and the key
#: alphabet size, which is what matters for columnsort (duplicates and
#: degenerate alphabets are the adversarial regime).
key_params = st.tuples(
    st.integers(min_value=0, max_value=2**31),
    st.sampled_from([2, 3, 5, 257, 2**32, 2**64]),
)


def make_keys(n, params):
    seed, space = params
    rng = np.random.default_rng(seed)
    return rng.integers(0, space, size=n, dtype=np.uint64)


# -- in-core ----------------------------------------------------------------


@given(shape=basic_shapes, params=key_params)
@settings(max_examples=40, deadline=None)
def test_basic_columnsort_sorts_anything(shape, params):
    r, s = shape
    flat = make_keys(r * s, params)
    out = columnsort(to_columns(flat, r, s))
    assert is_sorted_column_major(out)
    assert np.array_equal(from_columns(out), np.sort(flat))


@given(shape=subblock_shapes, params=key_params)
@settings(max_examples=40, deadline=None)
def test_subblock_columnsort_sorts_anything(shape, params):
    r, s = shape
    flat = make_keys(r * s, params)
    out = subblock_columnsort(to_columns(flat, r, s), check=(s != 1))
    assert is_sorted_column_major(out)
    assert np.array_equal(from_columns(out), np.sort(flat))


@given(seed=st.integers(min_value=0, max_value=2**31),
       alphabet=st.sampled_from([2, 3, 4]))
@settings(max_examples=25, deadline=None)
def test_small_key_spaces_below_basic_bound(seed, alphabet):
    """The adversarial regime: r = 4·s^(3/2) exactly, keys from a tiny
    alphabet — where a buggy subblock step would actually fail."""
    r, s = 256, 16
    rng = np.random.default_rng(seed)
    flat = rng.integers(0, alphabet, size=r * s, dtype=np.uint64)
    out = subblock_columnsort(to_columns(flat, r, s))
    assert is_sorted_column_major(out)


# -- distributed ------------------------------------------------------------

# The spmd properties run on every transport backend. A process-backend
# example pays a fork per rank, so its profile draws fewer examples —
# the thread profile keeps the original breadth, the process profile
# checks the invariant survives the address-space boundary.
def _spmd_examples(backend):
    return 15 if backend == "thread" else 4


@pytest.mark.parametrize("backend", available_backends())
def test_distributed_columnsort_matches_local_sort(backend):
    @given(p=st.sampled_from([2, 4]), params=key_params)
    @settings(max_examples=_spmd_examples(backend), deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def prop(p, params):
        n_local = 2 * p * p * 2
        ks = make_keys(p * n_local, params)
        recs = FMT.make(ks)

        def prog(comm):
            local = recs[comm.rank * n_local : (comm.rank + 1) * n_local]
            return distributed_columnsort(comm, local, FMT)

        got = np.concatenate(run_spmd(p, prog, backend=backend).returns)
        assert np.array_equal(got["key"], np.sort(ks))

    prop()


@pytest.mark.parametrize("backend", available_backends())
def test_distributed_columnsort_arbitrary_target_ranges(backend):
    """Any tiling of [0, N') into per-rank slices is honored.

    (n_local = 128/P satisfies the height restriction 2P² for every P
    drawn — running below it genuinely mis-sorts, as another test's
    falsifying example once demonstrated.)"""

    @given(
        p=st.sampled_from([1, 2, 4]),
        splits=st.lists(st.integers(0, 127), min_size=0, max_size=5),
        params=key_params,
    )
    @settings(max_examples=_spmd_examples(backend), deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def prop(p, splits, params):
        total = 128
        n_local = total // p
        assert n_local >= 2 * p * p
        ks = make_keys(total, params)
        recs = FMT.make(ks)
        cuts = sorted(set(splits) | {0, total})
        pieces = list(zip(cuts, cuts[1:]))
        ranges = [[] for _ in range(p)]
        for idx, piece in enumerate(pieces):
            ranges[idx % p].append(piece)

        def prog(comm):
            local = recs[comm.rank * n_local : (comm.rank + 1) * n_local]
            return distributed_columnsort(comm, local, FMT,
                                          target_ranges=ranges)

        res = run_spmd(p, prog, backend=backend)
        expected = np.sort(ks)
        for q, arr in enumerate(res.returns):
            want = np.concatenate(
                [expected[a:b] for (a, b) in ranges[q]]
            ) if ranges[q] else np.empty(0, dtype=np.uint64)
            assert np.array_equal(arr["key"], want)

    prop()


# -- full out-of-core -------------------------------------------------------

OOC_CONFIGS = [
    ("threaded", 2, 32, 128),  # P, r(buffer), N
    ("threaded", 4, 128, 1024),
    ("subblock", 2, 32, 128),
    ("subblock", 4, 256, 4096),
    ("m", 2, 32, 256),
    ("m", 4, 64, 2048),
    ("hybrid", 2, 128, 4096),
]


@given(
    config=st.sampled_from(OOC_CONFIGS),
    seed=st.integers(min_value=0, max_value=2**31),
    workload=st.sampled_from(["uniform", "duplicates", "sorted", "all-equal"]),
)
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_out_of_core_sorts_random_configs(config, seed, workload):
    """Any algorithm, any seed, any workload: the output verifies."""
    from repro.cluster.config import ClusterConfig
    from repro.records.generators import generate

    algorithm, p, buf, n = config
    fmt = RecordFormat("u8", 16)
    cluster = ClusterConfig(p=p, mem_per_proc=max(buf, 2 * p * p))
    recs = generate(workload, fmt, n, seed=seed)
    res = sort_out_of_core(algorithm, recs, cluster, fmt, buffer_records=buf)
    assert res.passes in (3, 4)


#: Small legal configs for the depth-equivalence property (one per
#: algorithm family; the subblock/hybrid variants ride the same pools).
PIPELINE_CONFIGS = [
    ("threaded", 2, 32, 128),
    ("subblock", 2, 32, 128),
    ("m", 2, 32, 256),
]


@given(
    config=st.sampled_from(PIPELINE_CONFIGS),
    seed=st.integers(min_value=0, max_value=2**31),
    key=st.sampled_from(["u8", "f8"]),
    record_size=st.sampled_from([16, 32]),
    depth=st.sampled_from([1, 2, 4]),
    workload=st.sampled_from(["uniform", "duplicates", "all-equal"]),
)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_pipeline_depth_never_changes_output(
    config, seed, key, record_size, depth, workload
):
    """The tentpole's core property: pipelining only reorders I/O in
    time — the PDM output is byte-identical at any depth, for any
    algorithm, shape, record format, and workload."""
    import tempfile

    from repro.cluster.config import ClusterConfig
    from repro.records.generators import generate

    algorithm, p, buf, n = config
    fmt = RecordFormat(key, record_size)
    cluster = ClusterConfig(p=p, mem_per_proc=max(buf, 2 * p * p))
    recs = generate(workload, fmt, n, seed=seed)
    with tempfile.TemporaryDirectory() as td:
        blobs = []
        for d in (0, depth):
            res = sort_out_of_core(
                algorithm, recs, cluster, fmt, buffer_records=buf,
                workdir=f"{td}/depth{d}", verify=False, collect_trace=False,
                pipeline_depth=d,
            )
            blobs.append(fmt.to_bytes(res.output.read_all()))
    assert blobs[0] == blobs[1]
