"""Column, striped-column, and PDM stores."""

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.disks.matrixfile import ColumnStore, PdmStore, StripedColumnStore
from repro.disks.virtual_disk import make_disk_array
from repro.errors import ConfigError, DiskError
from repro.records.format import RecordFormat
from repro.records.generators import generate


@pytest.fixture
def env(tmp_path):
    cfg = ClusterConfig(p=4, d=4, mem_per_proc=2**12)
    fmt = RecordFormat("u8", 32)
    disks = make_disk_array(tmp_path, cfg.virtual_disks)
    recs = generate("uniform", fmt, 64 * 8, seed=11)
    return cfg, fmt, disks, recs


class TestColumnStore:
    def test_roundtrip(self, env):
        cfg, fmt, disks, recs = env
        store = ColumnStore.from_records(cfg, fmt, recs, 64, 8, disks)
        assert np.array_equal(store.to_records(), recs)

    def test_column_contents(self, env):
        cfg, fmt, disks, recs = env
        store = ColumnStore.from_records(cfg, fmt, recs, 64, 8, disks)
        for j in range(8):
            col = store.read_column(store.owner(j), j)
            assert np.array_equal(col, recs[j * 64 : (j + 1) * 64])

    def test_ownership_enforced(self, env):
        cfg, fmt, disks, recs = env
        store = ColumnStore.from_records(cfg, fmt, recs, 64, 8, disks)
        with pytest.raises(DiskError, match="owned by rank"):
            store.read_column(0, 1)
        with pytest.raises(DiskError):
            store.write_column(2, 3, recs[:64])

    def test_segment_writes(self, env):
        cfg, fmt, disks, recs = env
        store = ColumnStore(cfg, fmt, 64, 8, disks, name="seg")
        store.write_segment(1, 1, 0, recs[:32])
        store.write_segment(1, 1, 32, recs[32:64])
        assert np.array_equal(store.read_column(1, 1), recs[:64])

    def test_segment_bounds_checked(self, env):
        cfg, fmt, disks, recs = env
        store = ColumnStore(cfg, fmt, 64, 8, disks, name="seg2")
        with pytest.raises(ConfigError):
            store.write_segment(1, 1, 60, recs[:8])

    def test_append_cursors(self, env):
        cfg, fmt, disks, recs = env
        store = ColumnStore(cfg, fmt, 64, 8, disks, name="app")
        store.append_to_column(2, 2, recs[:40])
        assert store.cursor(2) == 40
        store.append_to_column(2, 2, recs[40:64])
        assert np.array_equal(store.read_column(2, 2), recs[:64])
        store.reset_cursors()
        assert store.cursor(2) == 0

    def test_full_column_length_enforced(self, env):
        cfg, fmt, disks, recs = env
        store = ColumnStore(cfg, fmt, 64, 8, disks, name="len")
        with pytest.raises(ConfigError):
            store.write_column(0, 0, recs[:10])

    def test_wrong_record_count_on_load(self, env):
        cfg, fmt, disks, recs = env
        with pytest.raises(ConfigError):
            ColumnStore.from_records(cfg, fmt, recs[:100], 64, 8, disks)

    def test_p_must_divide_s(self, env):
        cfg, fmt, disks, _ = env
        with pytest.raises(ConfigError):
            ColumnStore(cfg, fmt, 64, 6, disks)

    def test_columns_cycle_over_owner_disks(self, tmp_path):
        cfg = ClusterConfig(p=2, d=4, mem_per_proc=2**12)
        fmt = RecordFormat("u8", 32)
        disks = make_disk_array(tmp_path / "multi", 4)
        store = ColumnStore(cfg, fmt, 16, 8, disks)
        used = {store.disk_for(j).disk_id for j in range(8) if store.owner(j) == 0}
        assert used == {0, 2}  # rank 0's two disks both used

    def test_delete_frees_files(self, env):
        cfg, fmt, disks, recs = env
        store = ColumnStore.from_records(cfg, fmt, recs, 64, 8, disks, name="gone")
        store.delete()
        assert all(not d.files() for d in disks)


class TestStripedColumnStore:
    def test_roundtrip(self, env):
        cfg, fmt, disks, recs = env
        store = StripedColumnStore.from_records(cfg, fmt, recs, 64, 8, disks)
        assert np.array_equal(store.to_records(), recs)

    def test_portions(self, env):
        cfg, fmt, disks, recs = env
        store = StripedColumnStore.from_records(cfg, fmt, recs, 64, 8, disks)
        assert store.portion == 16
        got = store.read_portion(2, 3)
        assert np.array_equal(got, recs[3 * 64 + 32 : 3 * 64 + 48])

    def test_append_cursors_per_rank_and_column(self, env):
        cfg, fmt, disks, recs = env
        store = StripedColumnStore(cfg, fmt, 64, 8, disks, name="sapp")
        store.append_to_portion(0, 0, recs[:8])
        store.append_to_portion(1, 0, recs[8:10])
        assert store.cursor(0, 0) == 8
        assert store.cursor(1, 0) == 2
        store.append_to_portion(0, 0, recs[8:16])
        assert np.array_equal(store.read_portion(0, 0), recs[:16])

    def test_portion_bounds(self, env):
        cfg, fmt, disks, recs = env
        store = StripedColumnStore(cfg, fmt, 64, 8, disks, name="sb")
        with pytest.raises(ConfigError):
            store.write_portion(0, 0, recs[:10])
        with pytest.raises(ConfigError):
            store.write_portion_segment(0, 0, 12, recs[:8])

    def test_p_must_divide_r(self, env):
        cfg, fmt, disks, _ = env
        with pytest.raises(ConfigError):
            StripedColumnStore(cfg, fmt, 66, 8, disks)


class TestPdmStore:
    def test_write_read_global(self, env):
        cfg, fmt, disks, recs = env
        pdm = PdmStore(cfg, fmt, len(recs), disks, block_records=16)
        sorted_recs = fmt.sort(recs)
        for rank, pieces in pdm.split_by_owner(0, len(recs)).items():
            for _disk, _off, rel, n in pieces:
                pdm.write_global(rank, rel, sorted_recs[rel : rel + n])
        assert np.array_equal(pdm.read_all(), sorted_recs)
        assert np.array_equal(pdm.read_global(100, 50), sorted_recs[100:150])

    def test_ownership_enforced(self, env):
        cfg, fmt, disks, recs = env
        pdm = PdmStore(cfg, fmt, len(recs), disks, block_records=16)
        # global 0 lives on disk 0 owned by rank 0; rank 1 may not write it.
        with pytest.raises(DiskError):
            pdm.write_global(1, 0, recs[:4])

    def test_unaligned_partial_block_writes(self, env):
        cfg, fmt, disks, recs = env
        pdm = PdmStore(cfg, fmt, len(recs), disks, block_records=16)
        # Range [3, 9) sits inside block 0 (disk 0, rank 0).
        pdm.write_global(0, 3, recs[:6])
        assert np.array_equal(pdm.read_global(3, 6), recs[:6])

    def test_range_checked(self, env):
        cfg, fmt, disks, recs = env
        pdm = PdmStore(cfg, fmt, 128, disks, block_records=16)
        with pytest.raises(ConfigError):
            pdm.read_global(120, 16)
        with pytest.raises(ConfigError):
            pdm.split_by_owner(-1, 4)

    def test_block_size_positive(self, env):
        cfg, fmt, disks, _ = env
        with pytest.raises(ConfigError):
            PdmStore(cfg, fmt, 128, disks, block_records=0)

    def test_io_totals_exposed(self, env):
        cfg, fmt, disks, recs = env
        store = ColumnStore.from_records(cfg, fmt, recs, 64, 8, disks, name="io")
        totals = store.io_totals()
        assert totals["bytes_written"] == len(recs) * 32
