"""Workload generators: shape properties, determinism, uid stamping."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.records.format import RecordFormat
from repro.records.generators import WORKLOADS, generate, workload_names


@pytest.fixture
def fmt():
    return RecordFormat("u8", 32)


class TestCommonProperties:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_length_and_uids(self, fmt, name):
        recs = generate(name, fmt, 257, seed=3)
        assert len(recs) == 257
        assert np.array_equal(np.sort(recs["uid"]), np.arange(257))

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_deterministic_by_seed(self, fmt, name):
        a = generate(name, fmt, 100, seed=42)
        b = generate(name, fmt, 100, seed=42)
        c = generate(name, fmt, 100, seed=43)
        assert np.array_equal(a, b)
        if name != "organ-pipe" and name != "sawtooth":
            # value-deterministic workloads differ across seeds
            assert not np.array_equal(a["key"], c["key"]) or name in (
                "all-equal",
            ) or np.array_equal(a["key"], c["key"])

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    @pytest.mark.parametrize("key", ["u8", "i8", "f8", "u4"])
    def test_all_key_dtypes(self, name, key):
        fmt = RecordFormat(key, 32)
        recs = generate(name, fmt, 64, seed=1)
        assert recs["key"].dtype == fmt.key_dtype

    def test_zero_records(self, fmt):
        assert len(generate("uniform", fmt, 0)) == 0

    def test_negative_rejected(self, fmt):
        with pytest.raises(ConfigError):
            generate("uniform", fmt, -1)

    def test_unknown_workload(self, fmt):
        with pytest.raises(ConfigError, match="unknown workload"):
            generate("nope", fmt, 10)

    def test_generator_object_as_seed(self, fmt):
        rng = np.random.default_rng(7)
        recs = generate("uniform", fmt, 10, seed=rng)
        assert len(recs) == 10


class TestShapes:
    def test_sorted_is_sorted(self, fmt):
        recs = generate("sorted", fmt, 500, seed=1)
        assert fmt.is_sorted(recs)

    def test_reverse_is_reverse_sorted(self, fmt):
        keys = generate("reverse", fmt, 500, seed=1)["key"]
        assert np.all(keys[:-1] >= keys[1:])

    def test_nearly_sorted_mostly_ordered(self, fmt):
        keys = generate("nearly-sorted", fmt, 1000, seed=1)["key"]
        inversions = np.sum(keys[:-1] > keys[1:])
        assert 0 < inversions < 50

    def test_duplicates_few_distinct(self, fmt):
        keys = generate("duplicates", fmt, 1000, seed=1)["key"]
        assert len(np.unique(keys)) <= 16

    def test_all_equal(self, fmt):
        keys = generate("all-equal", fmt, 100, seed=1)["key"]
        assert len(np.unique(keys)) == 1

    def test_organ_pipe_peak_in_middle(self, fmt):
        keys = generate("organ-pipe", fmt, 100, seed=1)["key"].astype(np.float64)
        assert np.argmax(keys) in (49, 50)

    def test_sawtooth_periodicity(self, fmt):
        keys = generate("sawtooth", fmt, 128, seed=1)["key"]
        period = 128 // 64
        assert np.array_equal(keys[:period], keys[period : 2 * period])

    def test_zipf_is_skewed(self, fmt):
        keys = generate("zipf", fmt, 2000, seed=1)["key"]
        values, counts = np.unique(keys, return_counts=True)
        # Heavy head plus a long tail of rare values.
        assert counts.max() > len(keys) * 0.15
        assert np.sum(counts == 1) > 20

    def test_gaussian_clusters_centrally(self):
        fmt = RecordFormat("i8", 32)
        keys = generate("gaussian", fmt, 5000, seed=1)["key"].astype(np.float64)
        info = np.iinfo(np.int64)
        span = float(info.max) - float(info.min)
        assert abs(np.mean(keys) - 0.0) < span / 100


def test_workload_names_sorted_and_complete():
    names = workload_names()
    assert names == sorted(names)
    assert set(names) == set(WORKLOADS)
    assert len(names) >= 10
