"""FaultPlan / FaultSpec: validation, triggering, and the legacy shim."""

import pytest

from repro.errors import CommError, DiskError, ResilienceError
from repro.resilience import FaultPlan, FaultSpec, transient_plan


class TestFaultSpecValidation:
    def test_defaults(self):
        spec = FaultSpec()
        assert spec.op == "any"
        assert spec.probability == 1.0
        assert spec.nth is None
        assert spec.count == 1
        assert spec.transient

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"op": "explode"},
            {"probability": -0.1},
            {"probability": 1.5},
            {"nth": 0},
            {"count": 0},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ResilienceError):
            FaultSpec(**kwargs)

    def test_matches(self):
        assert FaultSpec(op="any").matches("read")
        assert FaultSpec(op="any").matches("write")
        assert not FaultSpec(op="any").matches("comm")  # comm is opt-in
        assert FaultSpec(op="comm").matches("comm")
        assert not FaultSpec(op="read").matches("write")


class TestTriggering:
    def test_nth_op_trigger(self):
        plan = FaultPlan([FaultSpec(op="read", nth=3, count=1)])
        plan.check("read")  # 1st
        plan.check("read")  # 2nd
        with pytest.raises(DiskError, match="injected read fault"):
            plan.check("read")  # 3rd fires
        plan.check("read")  # count exhausted, 4th is clean

    def test_nth_counts_only_matching_ops(self):
        plan = FaultPlan([FaultSpec(op="write", nth=2, count=1)])
        plan.check("read")
        plan.check("read")
        plan.check("write")  # 1st write
        with pytest.raises(DiskError):
            plan.check("write")  # 2nd write fires

    def test_count_limits_firings(self):
        plan = FaultPlan([FaultSpec(op="read", probability=1.0, count=2)])
        for _ in range(2):
            with pytest.raises(DiskError):
                plan.check("read")
        plan.check("read")  # budget spent

    def test_unlimited_count(self):
        plan = FaultPlan([FaultSpec(op="read", probability=1.0, count=None)])
        for _ in range(5):
            with pytest.raises(DiskError):
                plan.check("read")

    def test_probabilistic_seeded_and_deterministic(self):
        def fired(seed):
            plan = FaultPlan(
                [FaultSpec(op="read", probability=0.3, count=None)], seed=seed
            )
            hits = []
            for i in range(200):
                try:
                    plan.check("read")
                except DiskError:
                    hits.append(i)
            return hits

        a, b = fired(42), fired(42)
        assert a == b  # same seed, same firing pattern
        assert 20 < len(a) < 100  # ~30% of 200, loosely
        assert fired(43) != a  # a different seed really reseeds

    def test_transient_flag_on_exception(self):
        plan = FaultPlan([FaultSpec(op="read", transient=True)])
        with pytest.raises(DiskError) as err:
            plan.check("read")
        assert err.value.transient is True

        plan = FaultPlan([FaultSpec(op="write", transient=False, count=1)])
        with pytest.raises(DiskError) as err:
            plan.check("write")
        assert err.value.transient is False

    def test_comm_fault_raises_commerror(self):
        plan = FaultPlan([FaultSpec(op="comm", transient=True)])
        with pytest.raises(CommError, match="injected transient comm fault") as err:
            plan.check("comm", where="0->1 tag='x'")
        assert err.value.transient
        assert "0->1" in str(err.value)

    def test_where_appears_in_message(self):
        plan = FaultPlan([FaultSpec(op="read")])
        with pytest.raises(DiskError, match="on disk 3"):
            plan.check("read", where="on disk 3")

    def test_snapshot_and_reset(self):
        plan = FaultPlan([FaultSpec(op="read", count=1)])
        with pytest.raises(DiskError):
            plan.check("read")
        plan.check("write")
        snap = plan.snapshot()
        assert snap["fired_total"] == 1
        assert snap["ops"]["read"] == 1
        assert snap["ops"]["write"] == 1
        plan.reset_counters()
        assert plan.snapshot()["fired_total"] == 0


class TestTransientPlanFactory:
    def test_builds_specs_for_requested_ops(self):
        plan = transient_plan(read_p=0.1, write_p=0.2, comm_p=0.3, seed=9)
        ops = sorted(spec.op for spec in plan.specs)
        assert ops == ["comm", "read", "write"]
        assert all(spec.transient for spec in plan.specs)

    def test_zero_probability_ops_omitted(self):
        plan = transient_plan(read_p=0.5)
        assert [spec.op for spec in plan.specs] == ["read"]


class TestLegacyInjectFaultShim:
    """`VirtualDisk.inject_fault` must keep its historical one-shot
    semantics (tests/test_failure_injection.py depends on them)."""

    def test_one_shot_permanent(self, tmp_path):
        from repro.disks.virtual_disk import VirtualDisk

        disk = VirtualDisk(tmp_path)
        disk.write_at("obj", 0, b"abcd")
        disk.inject_fault("read")
        with pytest.raises(DiskError, match="injected read fault") as err:
            disk.read_at("obj", 0, 4)
        assert err.value.transient is False  # not retried away by a policy
        assert disk.read_at("obj", 0, 4) == b"abcd"  # one-shot

    def test_any_matches_both_ops(self, tmp_path):
        from repro.disks.virtual_disk import VirtualDisk

        disk = VirtualDisk(tmp_path)
        disk.inject_fault("any")
        with pytest.raises(DiskError):
            disk.write_at("obj", 0, b"abcd")

    def test_unknown_kind_rejected_eagerly(self, tmp_path):
        from repro.disks.virtual_disk import VirtualDisk

        disk = VirtualDisk(tmp_path)
        with pytest.raises(DiskError, match="unknown fault kind"):
            disk.inject_fault("explode")

    def test_shim_survives_a_retry_policy(self, tmp_path):
        """An armed one-shot fault is permanent: a retry policy must not
        silently absorb it."""
        from repro.disks.virtual_disk import VirtualDisk
        from repro.resilience import RetryPolicy

        disk = VirtualDisk(tmp_path)
        disk.retry_policy = RetryPolicy(max_attempts=5, base_delay_s=0.0)
        disk.write_at("obj", 0, b"abcd")
        disk.inject_fault("read")
        with pytest.raises(DiskError, match="injected read fault"):
            disk.read_at("obj", 0, 4)
