"""Leighton's 8-step columnsort, in core."""

import numpy as np
import pytest

from repro.columnsort.basic import columnsort, columnsort_steps
from repro.errors import DimensionError
from repro.matrix.layout import (
    from_columns,
    is_sorted_column_major,
    is_sorted_columnwise,
    to_columns,
)
from repro.records.format import RecordFormat
from repro.records.generators import WORKLOADS, generate

SHAPES = [(2, 1), (8, 2), (32, 4), (512, 16), (18, 3), (50, 5)]


def run(flat, r, s, **kw):
    return columnsort(to_columns(np.asarray(flat), r, s), **kw)


class TestSorts:
    @pytest.mark.parametrize("r,s", SHAPES)
    def test_random_ints(self, r, s, rng):
        flat = rng.integers(0, 10**6, size=r * s)
        out = run(flat, r, s)
        assert is_sorted_column_major(out)
        assert np.array_equal(from_columns(out), np.sort(flat))

    @pytest.mark.parametrize("r,s", SHAPES)
    def test_small_key_space(self, r, s, rng):
        """Heavy duplication stresses the ±∞ padding discipline."""
        flat = rng.integers(0, 3, size=r * s)
        out = run(flat, r, s)
        assert np.array_equal(from_columns(out), np.sort(flat))

    def test_extreme_key_values(self, rng):
        """Keys equal to the dtype extremes must still sort (the pads
        rely on stability, not reserved values)."""
        info = np.iinfo(np.int64)
        flat = rng.choice(
            np.array([info.min, -1, 0, 1, info.max]), size=32 * 4
        ).astype(np.int64)
        out = run(flat, 32, 4)
        assert np.array_equal(from_columns(out), np.sort(flat))

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_all_workloads_with_records(self, workload):
        fmt = RecordFormat("u8", 32)
        recs = generate(workload, fmt, 512 * 16, seed=5)
        out = columnsort(to_columns(recs, 512, 16))
        flat = from_columns(out)
        assert np.array_equal(flat["key"], np.sort(recs["key"]))
        assert np.array_equal(np.sort(flat["uid"]), np.arange(len(recs)))

    def test_floats_with_negatives(self, rng):
        flat = rng.standard_normal(32 * 4)
        out = run(flat, 32, 4)
        assert np.allclose(from_columns(out), np.sort(flat))

    def test_already_sorted_input_unchanged(self):
        flat = np.arange(128)
        out = run(flat, 32, 4)
        assert np.array_equal(from_columns(out), flat)


class TestSteps:
    def test_step_labels_in_order(self, rng):
        m = to_columns(rng.integers(0, 100, size=32 * 4), 32, 4)
        labels = [label for label, _ in columnsort_steps(m)]
        assert labels == [
            "1:sort",
            "2:transpose-reshape",
            "3:sort",
            "4:reshape-transpose",
            "5:sort",
            "6:shift-down",
            "7:sort",
            "8:shift-up",
        ]

    def test_columns_sorted_after_odd_steps(self, rng):
        m = to_columns(rng.integers(0, 100, size=32 * 4), 32, 4)
        for label, state in columnsort_steps(m):
            if label.split(":")[0] in ("1", "3", "5", "7"):
                assert is_sorted_columnwise(state), label

    def test_shift_produces_s_plus_1_columns(self, rng):
        m = to_columns(rng.integers(0, 100, size=32 * 4), 32, 4)
        shapes = {label: state.shape for label, state in columnsort_steps(m)}
        assert shapes["6:shift-down"] == (32, 5)
        assert shapes["7:sort"] == (32, 5)
        assert shapes["8:shift-up"] == (32, 4)

    def test_input_not_mutated(self, rng):
        m = to_columns(rng.integers(0, 100, size=32 * 4), 32, 4)
        snapshot = m.copy()
        columnsort(m)
        assert np.array_equal(m, snapshot)


class TestRestrictionEnforcement:
    def test_violating_height_raises(self, rng):
        m = to_columns(rng.integers(0, 100, size=16 * 4), 16, 4)  # 16 < 32
        with pytest.raises(DimensionError):
            columnsort(m)

    def test_check_false_runs_anyway(self, rng):
        m = to_columns(rng.integers(0, 100, size=16 * 4), 16, 4)
        out = columnsort(m, check=False)  # may or may not sort; must not crash
        assert out.shape == (16, 4)
        assert np.array_equal(
            np.sort(from_columns(out)), np.sort(from_columns(m))
        )

    def test_below_bound_failure_exists(self):
        """The height restriction is not vacuous: there exists an input
        with r < 2s² that 8-step columnsort leaves unsorted. (Random
        inputs usually still sort; we search a seeded family.)"""
        rng = np.random.default_rng(1234)
        r, s = 8, 4  # far below 2s² = 32
        for _ in range(200):
            flat = rng.integers(0, 6, size=r * s)
            out = columnsort(to_columns(flat, r, s), check=False)
            if not is_sorted_column_major(out):
                return
        pytest.fail("no counterexample found — is the restriction vacuous?")
