"""Cross-backend transport conformance suite.

Every :class:`~repro.cluster.transport.Transport` must satisfy one
contract (DESIGN §11): same collective semantics, same byte-exact
``CommStats``, same failure taxonomy, same resilience hooks. These
tests run each requirement against every backend — and, where the
contract says "identical", against both at once.
"""

from __future__ import annotations

import pickle
import threading
import time

import numpy as np
import pytest

from repro.cluster import available_backends, get_transport, run_spmd
from repro.cluster.mailbox import MailboxRouter
from repro.cluster.process_backend import ProcessRouter, RemoteRankError, _Fabric
from repro.cluster.transport import ThreadTransport
from repro.errors import (
    AdmissionRejected,
    BudgetExceeded,
    CancelledError,
    CommError,
    ConfigError,
    CorruptionError,
    DeadlineExceeded,
    ProblemSizeError,
    SpmdError,
    WatchdogTimeout,
)
from repro.governor import CancelToken
from repro.membuf import get_pool
from repro.resilience import FaultPlan, RetryPolicy
from repro.resilience.faults import FaultSpec

BACKENDS = available_backends()

pytestmark = pytest.mark.parametrize("backend", BACKENDS)


def run_both(size, program, *args, **kwargs):
    """Run the same program on every backend; return {backend: result}."""
    return {
        b: run_spmd(size, program, *args, backend=b, **kwargs) for b in BACKENDS
    }


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_get_transport_resolves_every_listed_backend(self, backend):
        assert get_transport(backend).name == backend

    def test_unknown_backend_rejected(self, backend):
        with pytest.raises(ConfigError, match="unknown transport backend"):
            get_transport("carrier-pigeon")
        with pytest.raises(ConfigError, match="unknown transport backend"):
            run_spmd(2, lambda comm: comm.rank, backend="carrier-pigeon")


# ---------------------------------------------------------------------------
# alltoallv: shapes, zero-length slices, dtypes
# ---------------------------------------------------------------------------


def _alltoallv_program(comm, counts, dtype):
    """Send counts[comm.rank][d] records to each d; return a digest."""
    parts = [
        (np.arange(counts[comm.rank][d], dtype=np.int64) + 1000 * comm.rank + d)
        .astype(dtype)
        for d in range(comm.size)
    ]
    got = comm.alltoallv(parts)
    return [g.tolist() for g in got]


class TestAlltoallv:
    @pytest.mark.parametrize(
        "counts",
        [
            [[3, 1, 2], [2, 2, 2], [5, 0, 1]],  # mixed, one zero-length
            [[0, 0, 0], [0, 0, 0], [0, 0, 0]],  # all empty
            [[0, 7, 0], [0, 0, 0], [9, 0, 0]],  # sparse
        ],
    )
    def test_shapes_and_zero_length(self, backend, counts):
        res = run_spmd(3, _alltoallv_program, counts, np.int64, backend=backend)
        for dest in range(3):
            got = res.returns[dest]
            for source in range(3):
                expect = [
                    int(v) + 1000 * source + dest
                    for v in range(counts[source][dest])
                ]
                assert got[source] == expect

    def test_structured_dtype(self, backend):
        dtype = np.dtype([("key", "<u8"), ("pad", "V24")])

        def program(comm):
            parts = []
            for d in range(comm.size):
                arr = np.zeros(comm.rank + d + 1, dtype=dtype)
                arr["key"] = np.arange(len(arr)) + 100 * comm.rank + d
                parts.append(arr)
            got = comm.alltoallv(parts)
            return [g["key"].tolist() for g in got]

        res = run_spmd(3, program, backend=backend)
        for dest in range(3):
            for source in range(3):
                n = source + dest + 1
                assert res.returns[dest][source] == [
                    v + 100 * source + dest for v in range(n)
                ]

    def test_receiver_may_mutate_without_corrupting_others(self, backend):
        def program(comm):
            parts = [
                np.full(4, comm.rank, dtype=np.int64) for _ in range(comm.size)
            ]
            got = comm.alltoallv(parts)
            got[0][:] = -1  # scribble over one received slice
            comm.barrier()
            return [int(g[0]) for g in got[1:]]

        res = run_spmd(3, program, backend=backend)
        # Every rank's scribble stayed local: slices from ranks 1, 2 intact.
        assert all(r == [1, 2] for r in res.returns)


# ---------------------------------------------------------------------------
# Point-to-point and collective semantics
# ---------------------------------------------------------------------------


class TestSemantics:
    def test_p2p_fifo_per_tag_any_order_across_tags(self, backend):
        def program(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(i, dest=1, tag=7)
                comm.send("other", dest=1, tag=9)
                return None
            if comm.rank == 1:
                other = comm.recv(0, tag=9)  # later send, earlier receive
                seq = [comm.recv(0, tag=7) for _ in range(5)]
                return (other, seq)
            return None

        res = run_spmd(2, program, backend=backend)
        assert res.returns[1] == ("other", [0, 1, 2, 3, 4])

    def test_collectives_roundtrip(self, backend):
        def program(comm):
            comm.barrier()
            word = comm.bcast("hello" if comm.rank == 0 else None)
            mine = comm.scatter(
                [f"s{d}" for d in range(comm.size)] if comm.rank == 0 else None
            )
            gathered = comm.gather(comm.rank * 2)
            everyone = comm.allgather(comm.rank)
            total = comm.allreduce(comm.rank)
            prefix = comm.exscan(1)
            return (word, mine, gathered, everyone, total, prefix)

        res = run_spmd(3, program, backend=backend)
        for p, r in enumerate(res.returns):
            assert r[0] == "hello"
            assert r[1] == f"s{p}"
            assert r[2] == ([0, 2, 4] if p == 0 else None)
            assert r[3] == [0, 1, 2]
            assert r[4] == 3
            assert r[5] == p

    def test_collective_mismatch_is_commerror_not_deadlock(self, backend):
        def program(comm):
            if comm.rank == 0:
                comm.bcast("x")
            else:
                comm.barrier()
            return comm.rank

        with pytest.raises(SpmdError) as err:
            run_spmd(2, program, backend=backend, timeout=10)
        assert isinstance(err.value.cause, CommError)
        assert "collective mismatch" in str(err.value.cause)

    def test_receive_timeout_is_commerror(self, backend):
        def program(comm):
            if comm.rank == 1:
                return comm.recv(0, tag=3)  # nobody ever sends
            return None

        with pytest.raises(SpmdError) as err:
            run_spmd(2, program, backend=backend, timeout=0.5)
        assert isinstance(err.value.cause, CommError)
        assert "timed out" in str(err.value.cause)

    def test_subcommunicator_split(self, backend):
        def program(comm):
            sub = comm.split(color=comm.rank % 2)
            return sub.allgather(comm.rank)

        res = run_spmd(4, program, backend=backend)
        assert res.returns == [[0, 2], [1, 3], [0, 2], [1, 3]]


# ---------------------------------------------------------------------------
# Accounting: CommStats byte-exact across backends, oob ops unmetered,
# lease hygiene
# ---------------------------------------------------------------------------


def _mixed_traffic_program(comm):
    parts = [
        np.arange(8 * (d + 1), dtype=np.int64) for d in range(comm.size)
    ]
    comm.alltoallv(parts)
    comm.send(np.ones(16, dtype=np.int64), dest=(comm.rank + 1) % comm.size)
    comm.recv((comm.rank - 1) % comm.size)
    comm.bcast(b"control" if comm.rank == 0 else None)
    comm.barrier()
    return comm.stats.snapshot()


class TestAccounting:
    def test_commstats_byte_identical_across_backends(self, backend):
        del backend  # cross-backend by construction
        results = run_both(4, _mixed_traffic_program)
        reference = [s.snapshot() for s in results[BACKENDS[0]].stats]
        for b in BACKENDS[1:]:
            assert [s.snapshot() for s in results[b].stats] == reference
        # The returned (in-program) snapshots agree with the merged ones.
        for b, res in results.items():
            assert res.returns == [s.snapshot() for s in res.stats]

    def test_oob_ops_are_unmetered(self, backend):
        def program(comm):
            before = comm.stats.snapshot()
            comm.gather_oob({"rank": comm.rank})
            comm.barrier_oob()
            return comm.stats.snapshot() == before

        res = run_spmd(3, program, backend=backend)
        assert all(res.returns)

    def test_gather_oob_delivers_in_rank_order(self, backend):
        def program(comm):
            return comm.gather_oob(("payload", comm.rank))

        res = run_spmd(3, program, backend=backend)
        assert res.returns[0] == [("payload", p) for p in range(3)]
        assert res.returns[1] is None and res.returns[2] is None

    def test_arena_counters_operational_byte_meters_identical(self, backend):
        """The arena/attach/landing counters are transport-operational:
        zero on the thread backend (no segments exist), nonzero on the
        process backend for packed alltoallv traffic — while the
        data-plane *byte* meters stay identical across backends."""
        del backend  # cross-backend by construction
        from repro.membuf import ARENA_KEYS, copy_delta, copy_stats

        deltas = {}
        for b in BACKENDS:
            before = copy_stats().snapshot()
            run_spmd(3, _mixed_traffic_program, backend=b)
            deltas[b] = copy_delta(before, copy_stats().snapshot())
        reference = deltas[BACKENDS[0]]
        for b in BACKENDS[1:]:
            for key in ("bytes_copied", "bytes_zero_copy"):
                assert deltas[b][key] == reference[key], (
                    f"{key} diverged on {b}"
                )
        assert all(deltas["thread"][k] == 0 for k in ARENA_KEYS)
        if "process" in BACKENDS:
            proc = deltas["process"]
            assert proc["arena_misses"] > 0
            assert proc["attach_count"] > 0
            assert proc["bytes_landed_zero_extra_copy"] > 0

    def test_no_leases_leak_across_a_run(self, backend):
        pool = get_pool()
        baseline = pool.outstanding()

        def program(comm):
            parts = [np.arange(64, dtype=np.int64) for _ in range(comm.size)]
            comm.alltoallv(parts)
            comm.send(np.arange(32, dtype=np.int64), dest=(comm.rank + 1) % 2)
            comm.recv((comm.rank + 1) % 2)
            return True

        run_spmd(2, program, backend=backend)
        assert pool.outstanding() == baseline


# ---------------------------------------------------------------------------
# Failures: propagation, surrogates, cancellation, watchdog, retries
# ---------------------------------------------------------------------------


class _Unpicklable(Exception):
    """Round-trip-hostile: constructor signature != args."""

    def __init__(self, a, b):
        super().__init__(f"{a}/{b}")


class TestFailures:
    def test_rank_failure_keeps_type_and_rank(self, backend):
        def program(comm):
            comm.barrier()
            if comm.rank == 1:
                raise ValueError("deliberate")
            comm.barrier()

        with pytest.raises(SpmdError) as err:
            run_spmd(3, program, backend=backend, timeout=10)
        assert err.value.rank == 1
        assert isinstance(err.value.cause, ValueError)
        assert "deliberate" in str(err.value.cause)

    def test_unpicklable_failure_becomes_surrogate_on_process(self, backend):
        def program(comm):
            if comm.rank == 0:
                raise _Unpicklable("x", "y")
            comm.recv(0)

        with pytest.raises(SpmdError) as err:
            run_spmd(2, program, backend=backend, timeout=10)
        assert err.value.rank == 0
        if backend == "thread":
            assert isinstance(err.value.cause, _Unpicklable)
        else:
            # The type cannot cross the process boundary; the surrogate
            # names it and carries the traceback.
            assert isinstance(err.value.cause, RemoteRankError)
            assert "_Unpicklable" in str(err.value.cause)

    def test_cancellation_unwrapped(self, backend):
        token = CancelToken()

        def program(comm, tok):
            comm.barrier()
            if comm.rank == 0:
                tok.cancel("enough")
            while True:
                tok.check()
                time.sleep(0.01)

        with pytest.raises(CancelledError):
            run_spmd(
                3, program, token, backend=backend, cancel=token, timeout=10
            )

    def test_deadline_exceeded_keeps_type(self, backend):
        token = CancelToken(deadline_s=0.3)

        def program(comm, tok):
            while True:
                tok.check()
                time.sleep(0.01)

        with pytest.raises(DeadlineExceeded):
            run_spmd(
                2, program, token, backend=backend, cancel=token, timeout=10
            )

    def test_watchdog_names_a_stuck_world(self, backend):
        def program(comm):
            comm.recv((comm.rank + 1) % comm.size)  # everyone waits forever

        with pytest.raises(SpmdError) as err:
            run_spmd(
                2, program, backend=backend, timeout=60, watchdog_deadline=0.6
            )
        assert isinstance(err.value.cause, WatchdogTimeout)

    def test_comm_fault_retried_and_counted(self, backend):
        plan = FaultPlan(
            [FaultSpec(op="comm", probability=1.0, count=1, transient=True)]
        )

        def program(comm):
            comm.barrier()
            return comm.rank

        res = run_spmd(
            2,
            program,
            backend=backend,
            fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.001),
        )
        assert res.returns == [0, 1]
        # Fault-plan state is per address space, so the retry *count*
        # may differ between backends (each forked rank fires its own
        # nth-op trigger); the contract is that retries happen and are
        # surfaced, not their exact number.
        assert res.comm_retries >= 1

    def test_size_one_runs_inline(self, backend):
        def program(comm):
            return (comm.rank, comm.size, threading.current_thread().name)

        res = run_spmd(1, program, backend=backend)
        rank, size, thread_name = res.returns[0]
        assert (rank, size) == (0, 1)
        assert thread_name == "MainThread"  # inline on every backend


# ---------------------------------------------------------------------------
# Error pickling: the process transport's failure channel
# ---------------------------------------------------------------------------


ERROR_SAMPLES = [
    ProblemSizeError(1 << 30, 1 << 20, "threaded"),
    CorruptionError(2, "col-3", [(0, 4096), (8192, 4096)], repairable=True),
    SpmdError(3, ValueError("inner")),
    WatchdogTimeout(1, 12.5, 10.0),
    CancelledError("user said stop"),
    DeadlineExceeded(2.5),
    BudgetExceeded(1024, 512, 400, "backpressure timeout"),
    AdmissionRejected("queue_full", "3 jobs waiting"),
]


class TestErrorPickling:
    @pytest.mark.parametrize(
        "exc", ERROR_SAMPLES, ids=lambda e: type(e).__name__
    )
    def test_roundtrip_preserves_type_attrs_message(self, backend, exc):
        del backend  # backend-independent, but part of the contract
        clone = pickle.loads(pickle.dumps(exc))
        assert type(clone) is type(exc)
        assert str(clone) == str(exc)
        for attr, value in vars(exc).items():
            cloned = getattr(clone, attr)
            if isinstance(value, BaseException):
                assert type(cloned) is type(value) and str(cloned) == str(value)
            else:
                assert cloned == value


# ---------------------------------------------------------------------------
# Activity stamps: monotonic under concurrent / out-of-order delivery
# ---------------------------------------------------------------------------


class TestActivityStamps:
    def _router_for(self, backend):
        if backend == "thread":
            return MailboxRouter(timeout=5.0)
        return ProcessRouter(_Fabric(4, timeout=5.0), rank=0)

    def test_stale_stamp_never_moves_activity_backwards(self, backend):
        router = self._router_for(backend)
        now = time.monotonic()
        router.touch(2, stamp=now)
        router.touch(2, stamp=now - 10.0)  # stale delivery
        assert router.activity()[2] == pytest.approx(now)
        router.touch(2, stamp=now + 5.0)
        assert router.activity()[2] == pytest.approx(now + 5.0)

    def test_concurrent_touches_end_at_global_max(self, backend):
        router = self._router_for(backend)
        base = time.monotonic()
        stamps = [base + i * 1e-4 for i in range(400)]

        def worker(chunk):
            for s in chunk:
                router.touch(1, stamp=s)

        threads = [
            threading.Thread(target=worker, args=(stamps[i::4],))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert router.activity()[1] == pytest.approx(max(stamps))

    def test_live_touch_supersedes_old_explicit_stamp(self, backend):
        router = self._router_for(backend)
        router.touch(0, stamp=time.monotonic() - 30.0)
        router.touch(0)  # a real delivery happening now
        assert time.monotonic() - router.activity()[0] < 5.0


# ---------------------------------------------------------------------------
# SpmdResult surface
# ---------------------------------------------------------------------------


class TestResultSurface:
    def test_returns_and_stats_in_rank_order(self, backend):
        def program(comm, offset):
            comm.send(np.arange(4, dtype=np.int64), (comm.rank + 1) % comm.size)
            comm.recv((comm.rank - 1) % comm.size)
            return comm.rank + offset

        res = run_spmd(
            3, program, rank_args=[(10,), (20,), (30,)], backend=backend
        )
        assert res.returns == [10, 21, 32]
        assert [s.rank for s in res.stats] == [0, 1, 2]
        assert res.total_network_messages() == 3
        assert res.total_network_bytes() == 3 * 32

    def test_rank_args_length_validated(self, backend):
        with pytest.raises(ConfigError, match="rank_args"):
            run_spmd(3, lambda comm: None, rank_args=[(1,)], backend=backend)

    def test_thread_transport_is_the_default(self, backend):
        del backend
        assert get_transport("thread").__class__ is ThreadTransport
        assert BACKENDS[0] == "thread"
