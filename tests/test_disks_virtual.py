"""Virtual disks: block I/O, accounting, capacity, fault injection."""

import pytest

from repro.disks.iostats import IoStats
from repro.disks.virtual_disk import VirtualDisk, make_disk_array
from repro.errors import DiskError, DiskFullError


@pytest.fixture
def disk(tmp_path):
    return VirtualDisk(tmp_path / "d0", disk_id=0)


class TestBasicIO:
    def test_write_read_roundtrip(self, disk):
        disk.write_at("obj", 0, b"hello world")
        assert disk.read_at("obj", 0, 11) == b"hello world"
        assert disk.read_at("obj", 6, 5) == b"world"

    def test_overwrite_at_offset(self, disk):
        disk.write_at("obj", 0, b"aaaaaa")
        disk.write_at("obj", 2, b"BB")
        assert disk.read_at("obj", 0, 6) == b"aaBBaa"

    def test_gap_is_zero_filled(self, disk):
        disk.write_at("obj", 4, b"xy")
        assert disk.read_at("obj", 0, 6) == b"\0\0\0\0xy"

    def test_size_tracking(self, disk):
        assert disk.size("obj") == 0
        disk.write_at("obj", 0, b"12345")
        assert disk.size("obj") == 5
        disk.write_at("obj", 3, b"67890")
        assert disk.size("obj") == 8
        assert disk.used_bytes() == 8

    def test_short_read_raises(self, disk):
        disk.write_at("obj", 0, b"123")
        with pytest.raises(DiskError, match="short read"):
            disk.read_at("obj", 0, 4)

    def test_missing_object_raises(self, disk):
        with pytest.raises(DiskError, match="no object"):
            disk.read_at("ghost", 0, 1)

    def test_delete(self, disk):
        disk.write_at("obj", 0, b"x")
        disk.delete("obj")
        assert disk.files() == []
        disk.delete("obj")  # idempotent

    def test_invalid_names(self, disk):
        with pytest.raises(DiskError):
            disk.write_at("a/b", 0, b"")
        with pytest.raises(DiskError):
            disk.read_at(".hidden", 0, 0)

    def test_negative_ranges(self, disk):
        with pytest.raises(DiskError):
            disk.write_at("obj", -1, b"x")
        with pytest.raises(DiskError):
            disk.read_at("obj", 0, -2)

    def test_persistence_across_instances(self, tmp_path):
        d1 = VirtualDisk(tmp_path / "d", disk_id=0)
        d1.write_at("obj", 0, b"persist")
        d2 = VirtualDisk(tmp_path / "d", disk_id=0)
        assert d2.size("obj") == 7
        assert d2.read_at("obj", 0, 7) == b"persist"


class TestAccounting:
    def test_bytes_and_ops_counted(self, disk):
        disk.write_at("obj", 0, b"abcd")
        disk.write_at("obj", 4, b"ef")
        disk.read_at("obj", 0, 6)
        snap = disk.stats.snapshot()
        assert snap == {
            "reads": 1, "writes": 2, "bytes_read": 6, "bytes_written": 6,
            "read_retries": 0, "write_retries": 0,
            # Each write hashes its extent (4 + 2 bytes) and the read
            # verifies both extents again.
            "bytes_hashed": 12, "checksum_failures": 0,
        }

    def test_combine(self, tmp_path):
        disks = make_disk_array(tmp_path, 3)
        for d in disks:
            d.write_at("x", 0, b"ab")
        total = IoStats.combine([d.stats for d in disks])
        assert total["writes"] == 3 and total["bytes_written"] == 6

    def test_reset(self, disk):
        disk.write_at("obj", 0, b"x")
        disk.stats.reset()
        assert disk.stats.snapshot()["writes"] == 0


class TestCapacityAndFaults:
    def test_capacity_enforced(self, tmp_path):
        d = VirtualDisk(tmp_path / "d", capacity_bytes=10)
        d.write_at("a", 0, b"12345")
        with pytest.raises(DiskFullError):
            d.write_at("b", 0, b"1234567")
        # In-place overwrite does not grow usage.
        d.write_at("a", 0, b"54321")

    def test_capacity_frees_on_delete(self, tmp_path):
        d = VirtualDisk(tmp_path / "d", capacity_bytes=10)
        d.write_at("a", 0, b"1234567890")
        d.delete("a")
        d.write_at("b", 0, b"abcdefghij")

    def test_read_only(self, disk):
        disk.write_at("obj", 0, b"x")
        disk.read_only = True
        with pytest.raises(DiskError, match="read-only"):
            disk.write_at("obj", 0, b"y")
        with pytest.raises(DiskError, match="read-only"):
            disk.delete("obj")
        assert disk.read_at("obj", 0, 1) == b"x"

    def test_fault_injection_one_shot(self, disk):
        disk.write_at("obj", 0, b"abc")
        disk.inject_fault("read")
        with pytest.raises(DiskError, match="injected read fault"):
            disk.read_at("obj", 0, 1)
        assert disk.read_at("obj", 0, 1) == b"a"  # fault consumed

    def test_fault_kind_filter(self, disk):
        disk.write_at("obj", 0, b"abc")
        disk.inject_fault("write")
        assert disk.read_at("obj", 0, 3) == b"abc"  # reads unaffected
        with pytest.raises(DiskError, match="injected write fault"):
            disk.write_at("obj", 0, b"x")

    def test_fault_any(self, disk):
        disk.inject_fault("any")
        with pytest.raises(DiskError, match="injected"):
            disk.write_at("obj", 0, b"x")

    def test_unknown_fault_kind(self, disk):
        with pytest.raises(DiskError):
            disk.inject_fault("explode")


class TestMmapReads:
    """The opt-in ``REPRO_MMAP_READS`` read path: byte-equivalence with
    the classic path, remap on growth, CRC verification over the mapped
    view, and mapping lifecycle on delete."""

    @pytest.fixture
    def mdisk(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MMAP_READS", "1")
        d = VirtualDisk(tmp_path / "dm", disk_id=0)
        yield d
        d.close_mmaps()

    def test_bytes_and_out_paths_equivalent(self, tmp_path, monkeypatch):
        import numpy as np

        payload = bytes(range(256)) * 8
        plain = VirtualDisk(tmp_path / "plain", disk_id=0)
        mapped = VirtualDisk(tmp_path / "mapped", disk_id=0)
        for d in (plain, mapped):
            d.write_at("obj", 0, payload)
        monkeypatch.setenv("REPRO_MMAP_READS", "1")
        try:
            for offset, nbytes in [(0, 2048), (0, 1), (100, 900), (2040, 8)]:
                assert mapped.read_at("obj", offset, nbytes) == payload[
                    offset : offset + nbytes
                ]
                out = np.zeros(nbytes, dtype=np.uint8)
                assert mapped.read_at("obj", offset, nbytes, out=out) is out
                assert out.tobytes() == payload[offset : offset + nbytes]
            monkeypatch.delenv("REPRO_MMAP_READS")
            assert plain.read_at("obj", 0, 2048) == payload
        finally:
            mapped.close_mmaps()

    def test_io_accounting_identical(self, mdisk):
        mdisk.write_at("obj", 0, b"x" * 4096)
        mdisk.read_at("obj", 0, 4096)
        mdisk.read_at("obj", 1024, 512)
        snap = mdisk.stats.snapshot()
        assert snap["reads"] == 2 and snap["bytes_read"] == 4608

    def test_growth_remaps(self, mdisk):
        mdisk.write_at("obj", 0, b"a" * 100)
        assert mdisk.read_at("obj", 0, 100) == b"a" * 100  # maps 100 B
        mdisk.write_at("obj", 100, b"b" * 100)  # grows past the mapping
        assert mdisk.read_at("obj", 0, 200) == b"a" * 100 + b"b" * 100

    def test_in_place_rewrite_is_coherent(self, mdisk):
        mdisk.write_at("obj", 0, b"aaaa")
        assert mdisk.read_at("obj", 0, 4) == b"aaaa"  # mapping cached
        mdisk.write_at("obj", 1, b"BB")  # same inode, same size
        assert mdisk.read_at("obj", 0, 4) == b"aBBa"

    def test_crc_verification_unchanged(self, mdisk):
        from repro.errors import CorruptionError

        mdisk.write_at("obj", 0, b"abcdefgh")
        assert mdisk.read_at("obj", 0, 8) == b"abcdefgh"
        blob = bytearray((mdisk.root / "obj").read_bytes())
        blob[0] ^= 0xFF
        (mdisk.root / "obj").write_bytes(bytes(blob))
        with pytest.raises(CorruptionError):
            mdisk.read_at("obj", 0, 8)

    def test_short_read_still_reported(self, mdisk):
        mdisk.write_at("obj", 0, b"123")
        with pytest.raises(DiskError, match="short read"):
            mdisk.read_at("obj", 0, 4)

    def test_delete_closes_mapping_and_recreate_serves_fresh(self, mdisk):
        mdisk.write_at("obj", 0, b"old-bytes")
        assert mdisk.read_at("obj", 0, 9) == b"old-bytes"
        mdisk.delete("obj")
        assert not mdisk._mmaps
        mdisk.write_at("obj", 0, b"new")
        assert mdisk.read_at("obj", 0, 3) == b"new"

    def test_zero_length_read(self, mdisk):
        mdisk.write_at("obj", 0, b"abc")
        assert mdisk.read_at("obj", 0, 0) == b""
