"""Pipeline shape definitions and trace bookkeeping."""

import pytest

from repro.simulate.trace import (
    PassTrace,
    RoundWork,
    StageSpec,
    eleven_stage_pipeline,
    five_stage_pipeline,
    io_only_pipeline,
    seven_stage_pipeline,
    twenty_stage_pipeline,
)


class TestPipelineShapes:
    def test_five_stage_is_the_paper_pipeline(self):
        stages = five_stage_pipeline()
        assert [s.name for s in stages] == [
            "read", "sort", "communicate", "permute", "write",
        ]
        # Read and write share the I/O thread (paper §2: four threads).
        assert stages[0].thread == stages[-1].thread == "io"
        assert len({s.thread for s in stages}) == 4

    def test_seven_stage_has_two_sorts_two_comms(self):
        stages = seven_stage_pipeline()
        kinds = [s.kind for s in stages]
        assert kinds.count("sort") == 2
        assert kinds.count("comm") == 2

    def test_eleven_stage_thread_budget(self):
        """Paper §4: 11 stages on four threads."""
        stages = eleven_stage_pipeline()
        assert len(stages) == 11
        assert len({s.thread for s in stages}) == 4

    def test_twenty_stage_thread_budget(self):
        """Paper §4: 20 stages on seven threads."""
        stages = twenty_stage_pipeline()
        assert len(stages) == 20
        assert len({s.thread for s in stages}) == 7

    def test_io_only(self):
        stages = io_only_pipeline()
        assert [s.kind for s in stages] == ["read", "write"]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            StageSpec("x", "teleport", "io")


class TestPassTrace:
    def test_totals_by_kind(self):
        trace = PassTrace(
            "t",
            five_stage_pipeline(),
            [RoundWork(work={"read": 10, "write": 20, "sort": 5})] * 3,
        )
        assert trace.total("read") == 30
        assert trace.total("write") == 60
        assert trace.total("sort") == 15
        assert trace.total("comm") == 0

    def test_threads_preserve_order(self):
        trace = PassTrace("t", seven_stage_pipeline())
        assert trace.threads()[0] == "io"
        assert len(trace.threads()) == len(set(trace.threads()))


class TestPdmBalanceVerifier:
    def test_balanced_store_passes(self, tmp_path):
        from repro.cluster.config import ClusterConfig
        from repro.disks.matrixfile import PdmStore
        from repro.disks.virtual_disk import make_disk_array
        from repro.oocs.verify import verify_pdm_balance
        from repro.records.format import RecordFormat

        cfg = ClusterConfig(p=4, mem_per_proc=2**10)
        store = PdmStore(
            cfg, RecordFormat("u8", 32), 512, make_disk_array(tmp_path, 4), 16
        )
        verify_pdm_balance(store)  # structural property of the layout

    def test_tiny_store_is_vacuous(self, tmp_path):
        from repro.cluster.config import ClusterConfig
        from repro.disks.matrixfile import PdmStore
        from repro.disks.virtual_disk import make_disk_array
        from repro.oocs.verify import verify_pdm_balance
        from repro.records.format import RecordFormat

        cfg = ClusterConfig(p=4, mem_per_proc=2**10)
        store = PdmStore(
            cfg, RecordFormat("u8", 32), 8, make_disk_array(tmp_path, 4), 16
        )
        verify_pdm_balance(store)
