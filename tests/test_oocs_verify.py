"""The verification oracle catches every class of corruption."""

import numpy as np
import pytest

from repro.errors import VerificationError
from repro.oocs.verify import verify_output, verify_permutation, verify_sorted
from repro.records.format import RecordFormat
from repro.records.generators import generate

FMT = RecordFormat("u8", 32)


@pytest.fixture
def data():
    recs = generate("uniform", FMT, 256, seed=1)
    return recs, FMT.sort(recs)


class TestSortedCheck:
    def test_accepts_sorted(self, data):
        _, out = data
        verify_sorted(out)

    def test_rejects_single_inversion(self, data):
        _, out = data
        bad = out.copy()
        bad[10], bad[11] = out[11], out[10]
        with pytest.raises(VerificationError, match="not sorted"):
            verify_sorted(bad)

    def test_accepts_ties(self):
        recs = FMT.make(np.zeros(10, dtype=np.uint64))
        verify_sorted(recs)

    def test_accepts_empty_and_singleton(self):
        verify_sorted(FMT.empty(0))
        verify_sorted(FMT.make(np.array([7])))


class TestPermutationCheck:
    def test_accepts_permutation(self, data):
        recs, out = data
        verify_permutation(out, recs)

    def test_rejects_lost_record(self, data):
        recs, out = data
        with pytest.raises(VerificationError, match="records"):
            verify_permutation(out[:-1], recs)

    def test_rejects_duplicated_record(self, data):
        recs, out = data
        bad = out.copy()
        bad[0] = bad[1]  # uid 0 lost, some uid duplicated
        with pytest.raises(VerificationError, match="permutation"):
            verify_permutation(bad, recs)

    def test_rejects_corrupted_key(self, data):
        recs, out = data
        bad = out.copy()
        bad["key"][5] = bad["key"][5] + 1 if bad["key"][5] < 2**63 else 0
        # Keep it sorted-looking by re-sorting; the uid→key binding breaks.
        bad = FMT.sort(bad)
        with pytest.raises(VerificationError, match="key changed"):
            verify_permutation(bad, recs)


class TestFullVerify:
    def test_returns_records(self, data):
        recs, out = data
        got = verify_output(out, recs)
        assert np.array_equal(got, out)

    def test_catches_unsorted_first(self, data):
        recs, _ = data
        with pytest.raises(VerificationError, match="not sorted"):
            verify_output(recs.copy(), recs)

    def test_works_on_pdm_store(self, tmp_path):
        from repro.cluster.config import ClusterConfig
        from repro.disks.matrixfile import PdmStore
        from repro.disks.virtual_disk import make_disk_array

        cfg = ClusterConfig(p=2, mem_per_proc=2**10)
        disks = make_disk_array(tmp_path, 2)
        recs = generate("uniform", FMT, 64, seed=2)
        out = FMT.sort(recs)
        pdm = PdmStore(cfg, FMT, 64, disks, block_records=8)
        for rank, pieces in pdm.split_by_owner(0, 64).items():
            for _d, _o, rel, n in pieces:
                pdm.write_global(rank, rel, out[rel : rel + n])
        verify_output(pdm, recs)
