"""The MPI-like communicator: point-to-point, collectives, metering."""

import numpy as np
import pytest

from repro.cluster.comm import Comm
from repro.cluster.mailbox import MailboxRouter
from repro.cluster.spmd import run_spmd
from repro.errors import CommError


def pair():
    router = MailboxRouter(timeout=5)
    return Comm(0, 2, router), Comm(1, 2, router)


class TestPointToPoint:
    def test_send_recv(self):
        a, b = pair()
        a.send({"x": 1}, dest=1)
        assert b.recv(source=0) == {"x": 1}

    def test_fifo_order_per_tag(self):
        a, b = pair()
        for k in range(5):
            a.send(k, dest=1, tag=3)
        assert [b.recv(0, tag=3) for _ in range(5)] == list(range(5))

    def test_tags_independent(self):
        a, b = pair()
        a.send("late", 1, tag=1)
        a.send("early", 1, tag=2)
        assert b.recv(0, tag=2) == "early"
        assert b.recv(0, tag=1) == "late"

    def test_copy_on_send(self):
        a, b = pair()
        arr = np.zeros(3)
        a.send(arr, 1)
        arr[:] = 7
        assert np.all(b.recv(0) == 0)

    def test_copy_on_send_nested(self):
        a, b = pair()
        arrs = [np.zeros(2), np.ones(2)]
        a.send(arrs, 1)
        arrs[0][:] = 9
        got = b.recv(0)
        assert np.all(got[0] == 0)

    def test_self_send(self):
        a, _ = pair()
        a.send(42, dest=0)
        assert a.recv(source=0) == 42

    def test_bad_rank(self):
        a, _ = pair()
        with pytest.raises(CommError):
            a.send(1, dest=2)
        with pytest.raises(CommError):
            a.recv(source=-1)

    def test_recv_timeout_is_comm_error(self):
        router = MailboxRouter(timeout=0.2)
        c = Comm(0, 1, router)
        with pytest.raises(CommError, match="timed out"):
            c.recv(source=0, tag=9)


class TestCollectives:
    def test_bcast_non_root_payload_ignored(self):
        def prog(comm):
            return comm.bcast("truth" if comm.rank == 1 else "noise", root=1)

        assert run_spmd(3, prog).returns == ["truth"] * 3

    def test_gather_and_scatter(self):
        def prog(comm):
            got = comm.gather(comm.rank * 2, root=0)
            back = comm.scatter(
                [x + 1 for x in got] if comm.rank == 0 else None, root=0
            )
            return back

        assert run_spmd(4, prog).returns == [1, 3, 5, 7]

    def test_scatter_wrong_count(self):
        def prog(comm):
            comm.scatter([1], root=0)

        from repro.errors import SpmdError

        with pytest.raises(SpmdError):
            run_spmd(2, prog, timeout=5)

    def test_allgather(self):
        def prog(comm):
            return comm.allgather(chr(ord("a") + comm.rank))

        assert run_spmd(3, prog).returns == [["a", "b", "c"]] * 3

    def test_alltoall(self):
        def prog(comm):
            out = comm.alltoall([f"{comm.rank}->{d}" for d in range(comm.size)])
            return out

        res = run_spmd(3, prog)
        for me, got in enumerate(res.returns):
            assert got == [f"{src}->{me}" for src in range(3)]

    def test_alltoallv_lengths_and_values(self):
        def prog(comm):
            parts = [
                np.full(d + 1, comm.rank, dtype=np.int64)
                for d in range(comm.size)
            ]
            got = comm.alltoallv(parts)
            for src, arr in enumerate(got):
                assert len(arr) == comm.rank + 1
                assert np.all(arr == src)
            return True

        assert all(run_spmd(4, prog).returns)

    def test_alltoallv_empty_arrays_delivered(self):
        def prog(comm):
            parts = [np.empty(0, dtype=np.int64) for _ in range(comm.size)]
            got = comm.alltoallv(parts)
            return all(len(a) == 0 for a in got)

        assert all(run_spmd(3, prog).returns)

    def test_alltoallv_wrong_count(self):
        def prog(comm):
            comm.alltoallv([np.zeros(1)])

        from repro.errors import SpmdError

        with pytest.raises(SpmdError):
            run_spmd(2, prog, timeout=5)

    def test_allreduce_default_sum(self):
        def prog(comm):
            return comm.allreduce(comm.rank + 1)

        assert run_spmd(4, prog).returns == [10] * 4

    def test_allreduce_custom_op(self):
        def prog(comm):
            return comm.allreduce(comm.rank, op=max)

        assert run_spmd(4, prog).returns == [3] * 4

    def test_exscan(self):
        def prog(comm):
            return comm.exscan(10)

        assert run_spmd(4, prog).returns == [0, 10, 20, 30]

    def test_barrier_many_times(self):
        def prog(comm):
            for _ in range(20):
                comm.barrier()
            return comm.rank

        assert run_spmd(4, prog).returns == [0, 1, 2, 3]

    def test_collective_mismatch_detected(self):
        def prog(comm):
            if comm.rank == 0:
                comm.bcast("x", root=0)
            else:
                comm.allgather("y")

        from repro.errors import SpmdError

        with pytest.raises(SpmdError) as exc_info:
            run_spmd(2, prog, timeout=5)
        assert isinstance(exc_info.value.cause, CommError)


class TestStats:
    def test_network_vs_self_split(self):
        def prog(comm):
            comm.send(np.zeros(4, dtype=np.int64), dest=comm.rank)  # self: 32 B
            comm.send(np.zeros(2, dtype=np.int64), dest=(comm.rank + 1) % 2)
            comm.recv(source=comm.rank)
            comm.recv(source=(comm.rank + 1) % 2)
            return comm.stats.snapshot()

        res = run_spmd(2, prog)
        for snap in res.returns:
            assert snap["messages"] == 2
            assert snap["network_messages"] == 1
            assert snap["bytes"] == 32 + 16
            assert snap["network_bytes"] == 16

    def test_alltoallv_empty_not_metered(self):
        def prog(comm):
            parts = [np.empty(0, dtype=np.int64) for _ in range(comm.size)]
            parts[(comm.rank + 1) % comm.size] = np.zeros(4, dtype=np.int64)
            comm.alltoallv(parts)
            return comm.stats.snapshot()

        res = run_spmd(3, prog)
        for snap in res.returns:
            assert snap["by_op"].get("alltoallv", 0) == 1
            assert snap["network_bytes"] == 32

    def test_by_op_counters(self):
        def prog(comm):
            comm.barrier()
            comm.allgather(1)
            comm.allgather(2)
            return comm.stats.snapshot()

        snap = run_spmd(2, prog).returns[0]
        assert snap["by_op"]["barrier"] == 2
        assert snap["by_op"]["allgather"] == 4


class TestAlltoallvPacked:
    """The contiguous (packed) alltoallv fast path and its edge cases."""

    def test_mixed_empty_and_nonempty_partitions(self):
        def prog(comm):
            # Rank r sends r+1 records only to even destinations.
            parts = [
                np.full(comm.rank + 1, comm.rank, dtype=np.int64)
                if d % 2 == 0
                else np.empty(0, dtype=np.int64)
                for d in range(comm.size)
            ]
            got = comm.alltoallv(parts)
            if comm.rank % 2 == 0:
                return all(
                    len(a) == src + 1 and np.all(a == src)
                    for src, a in enumerate(got)
                )
            return all(len(a) == 0 for a in got)

        assert all(run_spmd(4, prog).returns)

    def test_all_empty_partitions(self):
        def prog(comm):
            got = comm.alltoallv(
                [np.empty(0, dtype=np.int64) for _ in range(comm.size)]
            )
            return all(len(a) == 0 for a in got)

        assert all(run_spmd(3, prog).returns)

    def test_single_rank_world(self):
        def prog(comm):
            got = comm.alltoallv([np.arange(5, dtype=np.int64)])
            ok = len(got) == 1 and np.array_equal(got[0], np.arange(5))
            snap = comm.stats.snapshot()
            return ok and snap["network_bytes"] == 0

        assert all(run_spmd(1, prog).returns)

    def test_structured_dtype_packs(self):
        from repro.records.format import RecordFormat

        fmt = RecordFormat("u8", 32)

        def prog(comm):
            parts = []
            for d in range(comm.size):
                part = fmt.empty(2)
                part["key"][:] = comm.rank * 100 + d
                parts.append(part)
            got = comm.alltoallv(parts)
            return all(
                np.all(a["key"] == src * 100 + comm.rank)
                for src, a in enumerate(got)
            )

        assert all(run_spmd(3, prog).returns)

    def test_receiver_mutation_does_not_leak(self):
        """Receivers get disjoint views of the packed buffer: mutating
        one received array must not corrupt what other ranks received,
        and must not reach back into the sender's input arrays."""

        def prog(comm):
            parts = [
                np.full(3, comm.rank * 10 + d, dtype=np.int64)
                for d in range(comm.size)
            ]
            got = comm.alltoallv(parts)
            got[0][:] = -1  # mutate the slice received from rank 0
            comm.barrier()  # everyone has mutated before anyone checks
            others_ok = all(
                np.all(got[src] == src * 10 + comm.rank)
                for src in range(1, comm.size)
            )
            mine_ok = all(
                np.all(parts[d] == comm.rank * 10 + d)
                for d in range(comm.size)
            )
            return others_ok and mine_ok

        assert all(run_spmd(3, prog).returns)

    def test_sender_mutation_after_send_is_isolated(self):
        def prog(comm):
            parts = [
                np.full(4, comm.rank, dtype=np.int64)
                for _ in range(comm.size)
            ]
            got_promise = comm.alltoallv(parts)
            for part in parts:
                part[:] = -7  # scribble after the collective
            comm.barrier()
            return all(
                np.all(a == src) for src, a in enumerate(got_promise)
            )

        assert all(run_spmd(3, prog).returns)

    def test_stats_parity_with_legacy_path(self, monkeypatch):
        """CommStats meters payload bytes identically whether the
        collective packed or fell back to per-destination copies."""

        def prog(comm):
            parts = [
                np.full(d + 1, comm.rank, dtype=np.int64)
                for d in range(comm.size)
            ]
            comm.alltoallv(parts)
            return comm.stats.snapshot()

        monkeypatch.delenv("REPRO_LEGACY_COPIES", raising=False)
        packed = run_spmd(3, prog).returns
        monkeypatch.setenv("REPRO_LEGACY_COPIES", "1")
        legacy = run_spmd(3, prog).returns
        for snap_p, snap_l in zip(packed, legacy):
            for key in ("messages", "bytes", "network_messages",
                        "network_bytes", "by_op"):
                assert snap_p[key] == snap_l[key]

    def test_packed_path_meters_pack_and_transit(self, monkeypatch):
        from repro.membuf import copy_stats

        monkeypatch.delenv("REPRO_LEGACY_COPIES", raising=False)

        def prog(comm):
            parts = [
                np.full(8, comm.rank, dtype=np.int64)
                for _ in range(comm.size)
            ]
            comm.alltoallv(parts)

        before = copy_stats().snapshot()
        run_spmd(2, prog)
        after = copy_stats().snapshot()
        # 2 ranks × 2 destinations × 64 B: every byte is packed (one
        # physical copy) and then transits the fabric as a view.
        moved = 2 * 2 * 8 * 8
        assert after["bytes_copied"] - before["bytes_copied"] == moved
        assert after["bytes_zero_copy"] - before["bytes_zero_copy"] >= moved
