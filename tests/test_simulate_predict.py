"""Runtime prediction: Figure 2's shape, as assertions."""

import pytest

from repro.simulate.hardware import BEOWULF_2003, MODERN_NVME
from repro.simulate.predict import (
    buffers_per_round,
    max_inflight_for,
    predict_run,
    predict_seconds_per_gb,
)
from repro.simulate.traces import (
    baseline_run_trace,
    m_run_trace,
    subblock_run_trace,
    threaded_run_trace,
)

GB = 2**30
REC = 64


def n_for(gb):
    return gb * GB // REC


class TestCalibration:
    def test_baseline_3pass_anchor(self):
        """The calibration anchor: the 3-pass baseline sits near 300 s
        per (GB/processor) — the paper's Figure 2 baseline line."""
        v = predict_seconds_per_gb("baseline-io", n_for(4), 4, 2**25, REC,
                                   BEOWULF_2003, passes=3)
        assert 280 <= v <= 330

    def test_baseline_ratio_is_passes_ratio(self):
        b3 = predict_seconds_per_gb("baseline-io", n_for(4), 4, 2**25, REC,
                                    BEOWULF_2003, passes=3)
        b4 = predict_seconds_per_gb("baseline-io", n_for(4), 4, 2**25, REC,
                                    BEOWULF_2003, passes=4)
        assert b4 / b3 == pytest.approx(4 / 3, rel=0.02)

    def test_threaded_is_io_bound_at_big_buffer(self):
        t = predict_seconds_per_gb("threaded", n_for(4), 4, 2**25, REC, BEOWULF_2003)
        b = predict_seconds_per_gb("baseline-io", n_for(4), 4, 2**25, REC,
                                   BEOWULF_2003, passes=3)
        assert b <= t <= 1.05 * b

    def test_subblock_is_four_thirds_of_threaded(self):
        t = predict_seconds_per_gb("threaded", n_for(4), 4, 2**24, REC, BEOWULF_2003)
        s = predict_seconds_per_gb("subblock", n_for(4), 4, 2**24, REC, BEOWULF_2003)
        assert s / t == pytest.approx(4 / 3, rel=0.05)

    def test_m_between_threaded_and_subblock(self):
        for buf in (2**24, 2**25):
            for gb, p in [(8, 8), (32, 16)]:
                m = predict_seconds_per_gb("m", n_for(gb), p, buf, REC, BEOWULF_2003)
                b3 = predict_seconds_per_gb("baseline-io", n_for(gb), p, buf, REC,
                                            BEOWULF_2003, passes=3)
                b4 = predict_seconds_per_gb("baseline-io", n_for(gb), p, buf, REC,
                                            BEOWULF_2003, passes=4)
                assert m > 1.03 * b3  # well above 3-pass baseline…
                assert m <= 1.01 * b4  # …but not slower than subblock's regime

    def test_smaller_buffer_slower_for_threaded(self):
        t24 = predict_seconds_per_gb("threaded", n_for(4), 4, 2**24, REC, BEOWULF_2003)
        t25 = predict_seconds_per_gb("threaded", n_for(4), 4, 2**25, REC, BEOWULF_2003)
        assert t24 > t25

    def test_time_scales_with_data_per_processor(self):
        """§5: secs per (GB/proc) is nearly flat across problem sizes."""
        vals = [
            predict_seconds_per_gb("m", n_for(gb), p, 2**24, REC, BEOWULF_2003)
            for gb, p in [(4, 4), (8, 8), (16, 8), (32, 16)]
        ]
        assert max(vals) <= 1.12 * min(vals)

    def test_modern_hardware_is_much_faster(self):
        old = predict_seconds_per_gb("threaded", n_for(4), 4, 2**25, REC, BEOWULF_2003)
        new = predict_seconds_per_gb("threaded", n_for(4), 4, 2**25, REC, MODERN_NVME)
        assert new < old / 50


class TestMechanics:
    def test_predict_run_totals_passes(self):
        run = threaded_run_trace(n_for(4), 4, 2**25 // REC, REC)
        timing = predict_run(run, BEOWULF_2003)
        assert timing.total_seconds == pytest.approx(
            sum(p.makespan for p in timing.per_pass)
        )
        assert len(timing.per_pass) == 3
        assert timing.gb_per_proc == pytest.approx(1.0)

    def test_seconds_per_gb_normalization(self):
        run = threaded_run_trace(n_for(8), 8, 2**25 // REC, REC)
        timing = predict_run(run, BEOWULF_2003)
        assert timing.seconds_per_gb_per_proc == pytest.approx(
            timing.total_seconds / 1.0
        )

    def test_buffers_per_round_shapes(self):
        thr = threaded_run_trace(n_for(4), 4, 2**25 // REC, REC)
        m = m_run_trace(n_for(4), 4, 2**19, REC)
        # 5-stage: 4 threads; 11-stage: 4 threads + in-core surcharge.
        assert buffers_per_round(thr.passes[0]) == 4
        assert buffers_per_round(m.passes[0]) == 5
        assert buffers_per_round(m.passes[2]) == 8  # 7 threads + 1

    def test_max_inflight_floors_at_one(self):
        sub = subblock_run_trace(n_for(4) * 4, 16, 2**24 // REC, REC)
        tiny_ram = BEOWULF_2003.__class__(
            **{**BEOWULF_2003.__dict__, "ram_bytes": 2**20}
        )
        assert max_inflight_for(sub.passes[0], tiny_ram, 2**24) == 1

    def test_io_bound_passes_report_io_bottleneck(self):
        run = baseline_run_trace(n_for(4), 4, 2**25 // REC, REC, passes=3)
        timing = predict_run(run, BEOWULF_2003)
        for pt in timing.per_pass:
            assert pt.bottleneck_thread == "io"
            assert pt.utilization("io") > 0.95
