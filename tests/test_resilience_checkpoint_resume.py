"""Pass-boundary checkpointing: kill a run after every boundary, resume,
and get byte-identical output.

The kill is simulated at the exact pass boundary: rank 0 persists the
manifest for pass ``k`` and then dies, which is the worst honest crash
point (the checkpoint exists but nothing after it ran). The conftest
lease-leak hook independently asserts every killed run returned its
buffer-pool leases.
"""

import json

import numpy as np
import pytest

from repro.cluster import available_backends
from repro.cluster.config import ClusterConfig
from repro.errors import CheckpointError, ConfigError, SpmdError
from repro.oocs.api import sort_out_of_core
from repro.records.format import RecordFormat
from repro.records.generators import generate
from repro.resilience import CheckpointStore

FMT = RecordFormat("u8", 16)

#: algorithm → (p, buffer_records, s, total passes, striped input?)
CONFIGS = {
    "threaded": (2, 128, 4, 3, False),
    "subblock": (2, 128, 4, 4, False),
    "m": (2, 64, 4, 3, True),
    "hybrid": (2, 64, 4, 4, True),
}


class SimulatedKill(RuntimeError):
    """Stands in for SIGKILL right after a manifest hits disk."""


def records_for(algorithm):
    p, buf, s, _, striped = CONFIGS[algorithm]
    n = p * buf * s if striped else buf * s
    return generate("uniform", FMT, n, seed=7)


def run_sort(algorithm, recs, depth, workdir=None, **kwargs):
    p, buf, _, _, _ = CONFIGS[algorithm]
    cluster = ClusterConfig(p=p, mem_per_proc=2**10)
    return sort_out_of_core(
        algorithm, recs, cluster, FMT, buffer_records=buf,
        pipeline_depth=depth, workdir=workdir, **kwargs,
    )


def kill_after_pass(kill_at):
    """A ``CheckpointStore.save_pass`` that dies right after persisting
    the manifest for pass ``kill_at``."""
    real = CheckpointStore.save_pass

    def killing(self, job, algorithm, pass_index, total, store):
        manifest = real(self, job, algorithm, pass_index, total, store)
        if pass_index == kill_at:
            raise SimulatedKill(f"killed after pass {pass_index} manifest")
        return manifest

    return killing


@pytest.mark.parametrize("backend", available_backends())
@pytest.mark.parametrize("depth", [0, 2])
@pytest.mark.parametrize("algorithm", sorted(CONFIGS))
class TestKillAndResume:
    """Kill/resume honesty must hold on every transport backend: the
    ``save_pass`` monkeypatch is fork-inherited by worker processes, and
    ``SimulatedKill`` (a one-arg RuntimeError) pickles across the result
    pipe with its type intact."""

    def test_resume_is_byte_identical_at_every_boundary(
        self, algorithm, depth, backend, tmp_path
    ):
        recs = records_for(algorithm)
        baseline = run_sort(algorithm, recs, depth, backend=backend)
        expected = baseline.output_records().tobytes()
        total = CONFIGS[algorithm][3]

        for kill_at in range(1, total + 1):
            workdir = tmp_path / f"w{kill_at}"
            ckdir = tmp_path / f"ck{kill_at}"
            with pytest.MonkeyPatch.context() as mp:
                mp.setattr(CheckpointStore, "save_pass", kill_after_pass(kill_at))
                with pytest.raises(SpmdError) as err:
                    run_sort(
                        algorithm, recs, depth, backend=backend,
                        workdir=workdir, checkpoint_dir=ckdir,
                    )
            assert isinstance(err.value.cause, SimulatedKill)
            # exactly the manifests for passes 1..kill_at survived the kill
            assert len(sorted(ckdir.glob("pass_*.json"))) == kill_at

            resumed = run_sort(
                algorithm, recs, depth, backend=backend,
                workdir=workdir, checkpoint_dir=ckdir, resume=True,
            )
            assert resumed.output_records().tobytes() == expected, (
                f"{algorithm} depth={depth}: resume after pass {kill_at} "
                f"diverged from the uninterrupted run"
            )
            # the resume really skipped the completed passes
            assert resumed.io["reads"] < baseline.io["reads"]
            # a finished run's checkpoints are garbage
            assert list(ckdir.glob("pass_*.json")) == []

    def test_scratch_of_checkpointed_pass_survives_the_kill(
        self, algorithm, depth, backend, tmp_path
    ):
        """Failure cleanup must keep the store the manifest points at —
        deleting it would make every resume a digest mismatch."""
        recs = records_for(algorithm)
        workdir = tmp_path / "w"
        ckdir = tmp_path / "ck"
        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(CheckpointStore, "save_pass", kill_after_pass(1))
            with pytest.raises(SpmdError):
                run_sort(
                    algorithm, recs, depth, backend=backend,
                    workdir=workdir, checkpoint_dir=ckdir,
                )
        manifest = json.loads(next(iter(ckdir.glob("pass_*.json"))).read_text())
        kept = [
            path
            for path in workdir.rglob("*")
            if path.is_file() and path.name.startswith(manifest["store"] + ".")
        ]
        assert kept, f"scratch files of {manifest['store']!r} were deleted"


class TestResumeValidation:
    def make_killed_run(self, tmp_path, algorithm="threaded"):
        recs = records_for(algorithm)
        workdir = tmp_path / "w"
        ckdir = tmp_path / "ck"
        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(CheckpointStore, "save_pass", kill_after_pass(1))
            with pytest.raises(SpmdError):
                run_sort(algorithm, recs, 0, workdir=workdir, checkpoint_dir=ckdir)
        return recs, workdir, ckdir

    def test_empty_manifest_rejected(self, tmp_path):
        """A crash between open and fsync can leave a zero-byte
        manifest; resume must refuse it with a message naming the file
        rather than crash on a JSON parse."""
        recs, workdir, ckdir = self.make_killed_run(tmp_path)
        victim = next(iter(sorted(ckdir.glob("pass_*.json"))))
        victim.write_text("")
        with pytest.raises(CheckpointError, match="empty"):
            run_sort(
                "threaded", recs, 0,
                workdir=workdir, checkpoint_dir=ckdir, resume=True,
            )

    def test_torn_manifest_rejected(self, tmp_path):
        recs, workdir, ckdir = self.make_killed_run(tmp_path)
        victim = next(iter(sorted(ckdir.glob("pass_*.json"))))
        victim.write_text(victim.read_text()[:10])
        with pytest.raises(CheckpointError, match="truncated or torn"):
            run_sort(
                "threaded", recs, 0,
                workdir=workdir, checkpoint_dir=ckdir, resume=True,
            )

    def test_algorithm_mismatch_rejected(self, tmp_path):
        recs, workdir, ckdir = self.make_killed_run(tmp_path)
        with pytest.raises(CheckpointError, match="algorithm"):
            run_sort(
                "subblock", recs, 0,
                workdir=tmp_path / "w2", checkpoint_dir=ckdir, resume=True,
            )

    def test_job_shape_mismatch_rejected(self, tmp_path):
        recs, workdir, ckdir = self.make_killed_run(tmp_path)
        cluster = ClusterConfig(p=2, mem_per_proc=2**10)
        with pytest.raises(CheckpointError, match="buffer_records"):
            sort_out_of_core(
                "threaded", recs, cluster, FMT, buffer_records=256,
                workdir=workdir, checkpoint_dir=ckdir, resume=True,
            )

    @staticmethod
    def tamper_scratch(workdir, ckdir):
        """Flip one byte of the checkpointed store's first data file
        (skipping the ``.meta`` checksum sidecars); returns the file."""
        manifest = json.loads(next(iter(ckdir.glob("pass_*.json"))).read_text())
        victim = next(
            path
            for path in sorted(workdir.rglob("*"))
            if path.is_file()
            and ".meta" not in path.parts
            and path.name.startswith(manifest["store"] + ".")
        )
        blob = bytearray(victim.read_bytes())
        blob[0] ^= 0xFF
        victim.write_bytes(bytes(blob))
        return victim

    def test_tampered_scratch_rejected_by_block_checksum(self, tmp_path):
        recs, workdir, ckdir = self.make_killed_run(tmp_path)
        victim = self.tamper_scratch(workdir, ckdir)
        with pytest.raises(
            CheckpointError, match=rf"checksum failure in '{victim.name}'"
        ):
            run_sort(
                "threaded", recs, 0,
                workdir=workdir, checkpoint_dir=ckdir, resume=True,
            )

    def test_tampered_scratch_rejected_by_digest(self, tmp_path):
        # With the checksum sidecars gone the CRC audit has nothing to
        # check, so the tamper must still be caught by the store digest.
        recs, workdir, ckdir = self.make_killed_run(tmp_path)
        self.tamper_scratch(workdir, ckdir)
        for sidecar in workdir.rglob(".meta/*.json"):
            sidecar.unlink()
        with pytest.raises(CheckpointError, match="digest"):
            run_sort(
                "threaded", recs, 0,
                workdir=workdir, checkpoint_dir=ckdir, resume=True,
            )

    def test_torn_manifest_rejected(self, tmp_path):
        recs, workdir, ckdir = self.make_killed_run(tmp_path)
        next(iter(ckdir.glob("pass_*.json"))).write_text("{not json")
        with pytest.raises(CheckpointError, match="unreadable"):
            run_sort(
                "threaded", recs, 0,
                workdir=workdir, checkpoint_dir=ckdir, resume=True,
            )

    def test_version_mismatch_rejected(self, tmp_path):
        recs, workdir, ckdir = self.make_killed_run(tmp_path)
        path = next(iter(ckdir.glob("pass_*.json")))
        manifest = json.loads(path.read_text())
        manifest["version"] = 999
        path.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="version"):
            run_sort(
                "threaded", recs, 0,
                workdir=workdir, checkpoint_dir=ckdir, resume=True,
            )

    def test_resume_needs_workdir(self, tmp_path):
        recs = records_for("threaded")
        with pytest.raises(ConfigError, match="workdir"):
            run_sort("threaded", recs, 0, checkpoint_dir=tmp_path / "ck",
                     resume=True)

    def test_resume_needs_checkpoint_dir(self, tmp_path):
        recs = records_for("threaded")
        with pytest.raises(ConfigError, match="checkpoint_dir"):
            run_sort("threaded", recs, 0, workdir=tmp_path / "w", resume=True)

    def test_resume_from_empty_checkpoint_dir_runs_fresh(self, tmp_path):
        recs = records_for("threaded")
        res = run_sort(
            "threaded", recs, 0,
            workdir=tmp_path / "w", checkpoint_dir=tmp_path / "ck", resume=True,
        )
        assert np.array_equal(
            res.output_records()["key"], np.sort(recs["key"], kind="stable")
        )

    def test_fresh_run_clears_stale_checkpoints(self, tmp_path):
        """Without resume=True, a leftover checkpoint directory must not
        poison the new run — it is cleared up front."""
        recs, workdir, ckdir = self.make_killed_run(tmp_path)
        assert list(ckdir.glob("pass_*.json"))
        res = run_sort(
            "threaded", recs, 0, workdir=tmp_path / "w3", checkpoint_dir=ckdir,
        )
        assert np.array_equal(
            res.output_records()["key"], np.sort(recs["key"], kind="stable")
        )
        assert list(ckdir.glob("pass_*.json")) == []


class TestCheckpointLifecycle:
    """A successful run retires its checkpoint directory; failures (and
    ``keep_checkpoints=True``) preserve it."""

    def test_clear_removes_tmp_leftovers(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        store.save({"version": 1, "pass_index": 1})
        (store.root / "pass_0002.json.tmp").write_text("torn half-write")
        store.clear()
        assert list(store.root.glob("pass_*")) == []
        assert store.root.exists()

    def test_prune_removes_the_directory(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        store.save({"version": 1, "pass_index": 1})
        store.save({"version": 1, "pass_index": 2})
        store.prune()
        assert not store.root.exists()

    def test_prune_spares_a_directory_with_foreign_files(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        store.save({"version": 1, "pass_index": 1})
        foreign = store.root / "notes.txt"
        foreign.write_text("mine")
        store.prune()
        assert store.root.exists() and foreign.exists()
        assert list(store.root.glob("pass_*.json")) == []

    def test_successful_run_prunes_checkpoint_dir(self, tmp_path):
        recs = records_for("threaded")
        ckdir = tmp_path / "ck"
        run_sort(
            "threaded", recs, 0, workdir=tmp_path / "w", checkpoint_dir=ckdir,
        )
        assert not ckdir.exists()

    def test_keep_checkpoints_preserves_manifests(self, tmp_path):
        recs = records_for("threaded")
        ckdir = tmp_path / "ck"
        run_sort(
            "threaded", recs, 0, workdir=tmp_path / "w",
            checkpoint_dir=ckdir, keep_checkpoints=True,
        )
        manifests = sorted(p.name for p in ckdir.glob("pass_*.json"))
        assert manifests  # every completed pass left its manifest
        data = json.loads((ckdir / manifests[-1]).read_text())
        assert data["algorithm"] == "threaded"
