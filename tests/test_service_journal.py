"""The job journal: durability, torn-write tolerance, and the
truncation property — a journal cut at *any* byte offset replays to a
prefix of the truth, never to lost, duplicated, or phantom jobs."""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import JournalError
from repro.service.jobs import (
    LEGAL_TRANSITIONS,
    TERMINAL_STATES,
    apply_event,
    compaction_events,
    replay_jobs,
)
from repro.service.journal import JobJournal, _encode


# -- basic mechanics -------------------------------------------------------


def test_append_replay_round_trip(tmp_path):
    j = JobJournal(tmp_path / "j.log")
    s1 = j.append("submitted", job="j000001", tenant="a", spec={"records": 64})
    s2 = j.append("admitted", job="j000001")
    s3 = j.append("drain", drained_clean=True)
    assert (s1, s2, s3) == (1, 2, 3)
    events, torn = j.replay()
    assert torn == 0
    assert [e["kind"] for e in events] == ["submitted", "admitted", "drain"]
    assert events[0]["spec"] == {"records": 64}
    assert events[2]["job"] is None  # service-level event
    j.close()


def test_replay_primes_sequence_for_new_handle(tmp_path):
    j = JobJournal(tmp_path / "j.log")
    j.append("submitted", job="j000001", spec={})
    j.close()
    j2 = JobJournal(tmp_path / "j.log")
    j2.replay()
    assert j2.append("admitted", job="j000001") == 2
    events, _ = j2.replay()
    assert [e["seq"] for e in events] == [1, 2]
    j2.close()


def test_none_fields_are_stripped(tmp_path):
    j = JobJournal(tmp_path / "j.log")
    j.append("submitted", job="j1", spec={}, key=None)
    events, _ = j.replay()
    assert "key" not in events[0]
    j.close()


@pytest.mark.parametrize(
    "tail",
    [
        b"garbage with no newline",
        b"00000000 {\"seq\": 99}\n",  # bad CRC
        b"zzzzzzzz not-json\n",  # unparsable CRC field
        _encode({"v": 1, "seq": 99, "kind": "admitted", "job": "j1"}),  # seq gap
    ],
)
def test_torn_or_foreign_tail_is_discarded(tmp_path, tail):
    j = JobJournal(tmp_path / "j.log")
    j.append("submitted", job="j1", spec={})
    j.append("admitted", job="j1")
    j.close()
    with open(tmp_path / "j.log", "ab") as fh:
        fh.write(tail)
    j2 = JobJournal(tmp_path / "j.log")
    events, torn = j2.replay()
    assert [e["kind"] for e in events] == ["submitted", "admitted"]
    assert torn == len(tail)
    j2.close()


def test_repair_truncates_and_appends_continue(tmp_path):
    path = tmp_path / "j.log"
    j = JobJournal(path)
    j.append("submitted", job="j1", spec={})
    j.close()
    clean_size = path.stat().st_size
    with open(path, "ab") as fh:
        fh.write(b"\x00\x01torn")
    j2 = JobJournal(path)
    assert j2.repair() == 6
    assert path.stat().st_size == clean_size
    assert j2.repair() == 0  # idempotent
    assert j2.append("admitted", job="j1") == 2
    events, torn = j2.replay()
    assert torn == 0 and len(events) == 2
    j2.close()


def test_compact_rewrites_to_minimal_history(tmp_path):
    j = JobJournal(tmp_path / "j.log")
    j.append("submitted", job="j1", tenant="t", spec={"records": 64}, key="k")
    j.append("admitted", job="j1")
    j.append("running", job="j1")
    j.append("checkpointed", job="j1", **{"pass": 1})
    j.append("checkpointed", job="j1", **{"pass": 2})
    j.append("done", job="j1", result={"output_digest": "d"})
    j.append("submitted", job="j2", tenant="t", spec={})
    before = j.size_bytes()
    events, _ = j.replay()
    jobs, _ = replay_jobs(events)
    j.compact(compaction_events(jobs))
    assert j.size_bytes() < before
    events2, torn = j.replay()
    assert torn == 0
    jobs2, _ = replay_jobs(events2)
    assert set(jobs2) == {"j1", "j2"}
    assert jobs2["j1"].state == "done"
    assert jobs2["j1"].passes_done == 2
    assert jobs2["j1"].result == {"output_digest": "d"}
    assert jobs2["j1"].idempotency_key == "k"
    assert jobs2["j2"].state == "submitted"
    assert j.append("admitted", job="j2") == len(events2) + 1
    j.close()


# -- replay strictness -----------------------------------------------------


def test_replay_rejects_duplicate_submit():
    events = [
        {"seq": 1, "kind": "submitted", "job": "j1", "spec": {}},
        {"seq": 2, "kind": "submitted", "job": "j1", "spec": {}},
    ]
    with pytest.raises(JournalError, match="second submission"):
        replay_jobs(events)


def test_replay_rejects_phantom_job():
    with pytest.raises(JournalError, match="never submitted"):
        replay_jobs([{"seq": 1, "kind": "running", "job": "jX"}])


def test_replay_rejects_illegal_transition():
    events = [
        {"seq": 1, "kind": "submitted", "job": "j1", "spec": {}},
        {"seq": 2, "kind": "admitted", "job": "j1"},
        {"seq": 3, "kind": "done", "job": "j1"},
    ]
    with pytest.raises(JournalError, match="illegal transition"):
        replay_jobs(events)


def test_terminal_states_accept_nothing():
    for terminal in TERMINAL_STATES:
        assert LEGAL_TRANSITIONS[terminal] == set()


# -- the truncation property ----------------------------------------------
#
# Build a random *legal* multi-job history, write it through the real
# journal, then cut the file at an arbitrary byte offset. Replaying the
# cut journal must yield exactly a prefix of the original events, and
# folding that prefix into a job table must never raise — no lost jobs
# (every replayed submit is in the table), no duplicates (replay raises
# on a second submit), no phantoms (replay raises on an unknown job id).


@st.composite
def _legal_history(draw):
    n_jobs = draw(st.integers(1, 4))
    walks = []
    for i in range(n_jobs):
        job_id = f"j{i + 1:06d}"
        state = "submitted"
        walk = [{"kind": "submitted", "job": job_id,
                 "spec": {"records": 64 * (i + 1)}, "tenant": "t"}]
        for _ in range(draw(st.integers(0, 6))):
            choices = sorted(LEGAL_TRANSITIONS[state])
            if not choices:
                break
            state = draw(st.sampled_from(choices))
            event = {"kind": state, "job": job_id}
            if state == "checkpointed":
                event["pass"] = draw(st.integers(1, 5))
            walk.append(event)
        walks.append(walk)
    # Interleave the walks without reordering any single job's events.
    history = []
    while any(walks):
        alive = [w for w in walks if w]
        walk = draw(st.sampled_from(alive))
        history.append(walk.pop(0))
    return history


@given(history=_legal_history(), data=st.data())
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_truncated_journal_never_lies(tmp_path, history, data):
    path = tmp_path / "j.log"
    path.unlink(missing_ok=True)
    journal = JobJournal(path)
    for event in history:
        journal.append(**{k: v for k, v in event.items() if k != "kind"},
                       kind=event["kind"])
    journal.close()
    full = path.read_bytes()
    # Draw from a fixed range and scale: the file length varies run to
    # run (events carry wall-clock timestamps), and hypothesis requires
    # identical draw bounds when it replays an example.
    cut = data.draw(st.integers(0, 10_000)) * (len(full) + 1) // 10_001
    path.write_bytes(full[:cut])

    truncated = JobJournal(path)
    events, _torn = truncated.replay()
    truncated.close()

    # Replay is exactly a prefix of the history (no reordering, no
    # inventions), and folding it can never raise: any prefix of a
    # legal sequence is legal.
    assert len(events) <= len(history)
    for got, want in zip(events, history):
        assert got["kind"] == want["kind"]
        assert got["job"] == want["job"]
    jobs, service_events = replay_jobs(events)
    assert not service_events

    # No phantom or duplicated jobs: the table holds exactly the job
    # ids submitted in the surviving prefix, once each.
    submitted = [e["job"] for e in events if e["kind"] == "submitted"]
    assert len(submitted) == len(set(submitted))
    assert set(jobs) == set(submitted)
    # And no lost progress: each job's state matches the last event in
    # the prefix that touched it.
    for job_id, record in jobs.items():
        last = [e for e in events if e["job"] == job_id][-1]
        assert record.state == last["kind"]


def test_journal_line_format_is_stable(tmp_path):
    """The on-disk format is a public durability surface: hex CRC,
    space, compact JSON, newline."""
    j = JobJournal(tmp_path / "j.log")
    j.append("submitted", job="j1", spec={})
    j.close()
    raw = (tmp_path / "j.log").read_bytes()
    assert raw.endswith(b"\n")
    crc, payload = raw[:-1].split(b" ", 1)
    assert len(crc) == 8
    int(crc, 16)  # parses as hex
    event = json.loads(payload)
    assert event["seq"] == 1 and event["kind"] == "submitted"
