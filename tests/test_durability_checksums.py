"""Block checksums: hashing helpers, the per-disk catalog, and the
disk read path's corruption detection."""

import json

import pytest

from repro.durability.checksums import BlockChecksums
from repro.durability.hashing import (
    CHECKSUM_ALGO,
    block_checksum,
    file_digest,
    hexdigest,
)
from repro.disks.virtual_disk import VirtualDisk, make_disk_array
from repro.errors import CorruptionError, DiskError
from repro.resilience.retry import RetryPolicy


@pytest.fixture
def disk(tmp_path):
    return VirtualDisk(tmp_path / "d0", disk_id=0)


class TestHashing:
    def test_block_checksum_deterministic(self):
        assert block_checksum(b"abc") == block_checksum(b"abc")
        assert block_checksum(b"abc") != block_checksum(b"abd")

    def test_block_checksum_accepts_memoryview(self):
        data = bytearray(b"columnsort")
        assert block_checksum(memoryview(data)) == block_checksum(bytes(data))

    def test_algo_is_gated_not_assumed(self):
        # crc32c if the wheel is present, zlib's crc32 otherwise — either
        # way the module must say which one it is using.
        assert CHECKSUM_ALGO in ("crc32c", "crc32")

    def test_file_digest_matches_hexdigest(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(b"x" * (3 * 2**20 + 17))  # crosses chunk boundaries
        assert file_digest(path) == hexdigest(b"x" * (3 * 2**20 + 17))


class TestCatalog:
    def test_record_and_verify_roundtrip(self, tmp_path):
        cat = BlockChecksums(tmp_path)
        cat.record("obj", 0, b"aaaa")
        cat.record("obj", 4, b"bbbb")
        bad, hashed = cat.verify("obj", 0, b"aaaabbbb")
        assert bad == [] and hashed == 8

    def test_verify_flags_mismatch(self, tmp_path):
        cat = BlockChecksums(tmp_path)
        cat.record("obj", 0, b"aaaa")
        bad, _ = cat.verify("obj", 0, b"aaXa")
        assert bad == [(0, 4)]

    def test_overwrite_folds_out_stale_extents(self, tmp_path):
        cat = BlockChecksums(tmp_path)
        cat.record("obj", 0, b"aaaa")
        cat.record("obj", 2, b"cc")  # partially covers the first extent
        # The stale [0,4) checksum no longer describes the file: dropped.
        assert cat.extents("obj") == [(2, 2, block_checksum(b"cc"))]

    def test_sidecar_persists_across_processes(self, tmp_path):
        cat = BlockChecksums(tmp_path)
        cat.record("obj", 0, b"hello")
        reloaded = BlockChecksums(tmp_path)
        assert reloaded.extents("obj") == cat.extents("obj")

    def test_foreign_algo_sidecar_discarded(self, tmp_path):
        cat = BlockChecksums(tmp_path)
        cat.record("obj", 0, b"hello")
        sidecar = tmp_path / ".meta" / "obj.json"
        doc = json.loads(sidecar.read_text())
        doc["algo"] = "md5-of-the-future"
        sidecar.write_text(json.dumps(doc))
        assert BlockChecksums(tmp_path).extents("obj") == []

    def test_expected_crc_exact_extent_only(self, tmp_path):
        cat = BlockChecksums(tmp_path)
        cat.record("obj", 8, b"data")
        assert cat.expected_crc("obj", 8, 4) == block_checksum(b"data")
        assert cat.expected_crc("obj", 8, 2) is None


class TestDiskIntegration:
    def test_clean_read_verifies_and_meters(self, disk):
        disk.write_at("obj", 0, b"abcdefgh")
        disk.read_at("obj", 0, 8)
        snap = disk.stats.snapshot()
        assert snap["bytes_hashed"] == 16  # 8 on write + 8 on read-verify
        assert snap["checksum_failures"] == 0

    def corrupt(self, disk, name, at=0):
        path = disk.root / name
        blob = bytearray(path.read_bytes())
        blob[at] ^= 0xFF
        path.write_bytes(bytes(blob))

    def test_bit_rot_raises_corruption_error(self, disk):
        disk.write_at("obj", 0, b"abcdefgh")
        self.corrupt(disk, "obj")
        with pytest.raises(CorruptionError) as err:
            disk.read_at("obj", 0, 8)
        assert err.value.disk_id == 0
        assert err.value.name == "obj"
        assert err.value.extents == [(0, 8)]
        assert not err.value.repairable  # no parity layer attached
        assert disk.stats.snapshot()["checksum_failures"] == 1

    def test_unrepairable_corruption_not_retried(self, disk):
        disk.write_at("obj", 0, b"abcdefgh")
        self.corrupt(disk, "obj")
        disk.retry_policy = RetryPolicy(max_attempts=5, base_delay_s=0.0)
        with pytest.raises(CorruptionError):
            disk.read_at("obj", 0, 8)
        # A hopeless retry must not be metered as recovery effort.
        assert disk.stats.snapshot()["read_retries"] == 0

    def test_corruption_error_is_disk_error(self):
        assert issubclass(CorruptionError, DiskError)
        assert not RetryPolicy.retryable(
            CorruptionError(0, "obj", [(0, 8)], repairable=False)
        )
        assert RetryPolicy.retryable(
            CorruptionError(0, "obj", [(0, 8)], repairable=True)
        )

    def test_delete_drops_checksums(self, disk):
        disk.write_at("obj", 0, b"abcd")
        disk.delete("obj")
        assert disk.checksums.extents("obj") == []
        assert not (disk.root / ".meta" / "obj.json").exists()

    def test_meta_dir_invisible_to_namespace(self, disk):
        disk.write_at("obj", 0, b"abcd")
        assert disk.files() == ["obj"]

    def test_fingerprint_uses_shared_digest(self, disk):
        disk.write_at("obj", 0, b"abcd")
        assert disk.fingerprint("obj") == hexdigest(b"abcd")


class TestStoreLevel:
    def test_store_reads_verified_end_to_end(self, tmp_path, small_fmt):
        import numpy as np

        from repro.cluster.config import ClusterConfig
        from repro.disks.matrixfile import ColumnStore
        from repro.records.generators import generate

        cluster = ClusterConfig(p=2, mem_per_proc=2**10)
        disks = make_disk_array(tmp_path, cluster.virtual_disks)
        recs = generate("uniform", small_fmt, 256, seed=3)
        store = ColumnStore.from_records(
            cluster, small_fmt, recs, 64, 4, disks, name="input"
        )
        col0 = store.read_column(store.owner(0), 0)
        assert np.array_equal(col0, recs[:64])
        # flip one payload byte of column 0 on disk
        victim = store.disk_for(0).root / store._file(0)
        blob = bytearray(victim.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        victim.write_bytes(bytes(blob))
        with pytest.raises(CorruptionError):
            store.read_column(store.owner(0), 0)
