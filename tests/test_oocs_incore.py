"""Distributed in-core sorts: the M-columnsort sort stage and its §4
competitors."""

import numpy as np
import pytest

from repro.cluster.spmd import run_spmd
from repro.errors import ConfigError, DimensionError, SpmdError
from repro.oocs.incore.bitonic import bitonic_exchange_count, distributed_bitonic_sort
from repro.oocs.incore.columnsort_dist import distributed_columnsort
from repro.oocs.incore.common import balanced_ranges, validate_ranges
from repro.oocs.incore.radix import distributed_radix_sort, sortable_uint_keys
from repro.oocs.incore.sample import distributed_sample_sort
from repro.records.format import RecordFormat
from repro.records.generators import WORKLOADS, generate

FMT = RecordFormat("u8", 32)

SORTS = {
    "columnsort": distributed_columnsort,
    "bitonic": distributed_bitonic_sort,
    "radix": distributed_radix_sort,
    "sample": distributed_sample_sort,
}


def sort_distributed(fn, recs, p, fmt=FMT, **kw):
    n_local = len(recs) // p

    def prog(comm):
        local = recs[comm.rank * n_local : (comm.rank + 1) * n_local]
        return fn(comm, local, fmt, **kw)

    return np.concatenate(run_spmd(p, prog).returns)


class TestAllSorts:
    @pytest.mark.parametrize("name", sorted(SORTS))
    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_sorts_uniform(self, name, p):
        recs = generate("uniform", FMT, p * max(2 * p * p, 64), seed=1)
        got = sort_distributed(SORTS[name], recs, p)
        expected = FMT.sort(recs)
        assert np.array_equal(got["key"], expected["key"])
        assert np.array_equal(np.sort(got["uid"]), np.sort(recs["uid"]))

    @pytest.mark.parametrize("name", sorted(SORTS))
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_sorts_every_workload(self, name, workload):
        p = 4
        recs = generate(workload, FMT, p * 64, seed=2)
        got = sort_distributed(SORTS[name], recs, p)
        assert np.array_equal(got["key"], np.sort(recs["key"]))

    @pytest.mark.parametrize("name", sorted(SORTS))
    @pytest.mark.parametrize("key", ["u8", "i8", "f8"])
    def test_key_dtypes_with_negatives(self, name, key):
        fmt = RecordFormat(key, 32)
        p = 4
        recs = generate("gaussian", fmt, p * 64, seed=3)
        got = sort_distributed(SORTS[name], recs, p, fmt=fmt)
        assert np.array_equal(got["key"], np.sort(recs["key"]))

    @pytest.mark.parametrize("name", sorted(SORTS))
    def test_single_rank(self, name):
        if name == "columnsort":
            recs = generate("uniform", FMT, 64, seed=4)
            got = sort_distributed(SORTS[name], recs, 1)
            assert np.array_equal(got["key"], np.sort(recs["key"]))

    @pytest.mark.parametrize("name", sorted(SORTS))
    def test_unequal_lengths_rejected(self, name):
        def prog(comm):
            local = FMT.make(np.arange(comm.rank + 4, dtype=np.uint64))
            return SORTS[name](comm, local, FMT)

        with pytest.raises(SpmdError) as exc_info:
            run_spmd(2, prog, timeout=5)
        assert isinstance(exc_info.value.cause, ConfigError)


class TestTargetRanges:
    def test_piecewise_delivery(self):
        p, n_local = 4, 64
        recs = generate("uniform", FMT, p * n_local, seed=5)
        expected = FMT.sort(recs)
        chunk = 64
        ranges = [
            [(m * chunk * p // p + q * 16, m * chunk + (q + 1) * 16)
             for m in range(0)]  # replaced below
            for q in range(p)
        ]
        # Interleaved 16-record pieces: rank q gets piece q of each 64-chunk.
        ranges = [
            [(m * 64 + q * 16, m * 64 + (q + 1) * 16) for m in range(4)]
            for q in range(p)
        ]
        def prog(comm):
            local = recs[comm.rank * n_local : (comm.rank + 1) * n_local]
            return distributed_columnsort(comm, local, FMT, target_ranges=ranges)

        res = run_spmd(p, prog)
        for q, arr in enumerate(res.returns):
            want = np.concatenate(
                [expected[m * 64 + q * 16 : m * 64 + (q + 1) * 16] for m in range(4)]
            )
            assert np.array_equal(arr["key"], want["key"])

    def test_empty_share_allowed(self):
        p, n_local = 2, 32
        recs = generate("uniform", FMT, p * n_local, seed=6)
        ranges = [[(0, 64)], []]

        def prog(comm):
            local = recs[comm.rank * n_local : (comm.rank + 1) * n_local]
            return distributed_columnsort(comm, local, FMT, target_ranges=ranges)

        res = run_spmd(p, prog)
        assert len(res.returns[0]) == 64
        assert len(res.returns[1]) == 0

    def test_bad_ranges_rejected(self):
        with pytest.raises(ConfigError, match="tile"):
            validate_ranges([[(0, 10)], [(12, 20)]], 20, 2)  # gap
        with pytest.raises(ConfigError, match="tile"):
            validate_ranges([[(0, 12)], [(10, 20)]], 20, 2)  # overlap
        with pytest.raises(ConfigError):
            validate_ranges([[(0, 20)]], 20, 2)  # wrong rank count

    def test_balanced_ranges(self):
        assert balanced_ranges(12, 3) == [[(0, 4)], [(4, 8)], [(8, 12)]]
        with pytest.raises(ConfigError):
            balanced_ranges(10, 3)


class TestColumnsortSpecifics:
    def test_height_restriction_enforced(self):
        def prog(comm):
            local = generate("uniform", FMT, 16, seed=1)  # 16 < 2·4² = 32
            return distributed_columnsort(comm, local, FMT)

        with pytest.raises(SpmdError) as exc_info:
            run_spmd(4, prog, timeout=5)
        assert isinstance(exc_info.value.cause, DimensionError)

    def test_check_false_skips_restriction(self):
        recs = generate("uniform", FMT, 4 * 16, seed=7)
        got = sort_distributed(distributed_columnsort, recs, 4, check=False)
        # May be unsorted in principle, but the multiset is preserved.
        assert np.array_equal(np.sort(got["key"]), np.sort(recs["key"]))


class TestRadixSpecifics:
    def test_uint_encoding_preserves_order_u8(self):
        keys = np.array([0, 1, 2**63, 2**64 - 1], dtype=np.uint64)
        enc = sortable_uint_keys(keys)
        assert np.all(np.diff(enc.astype(object)) > 0)

    def test_uint_encoding_preserves_order_i8(self):
        keys = np.array([-(2**62), -1, 0, 1, 2**62], dtype=np.int64)
        enc = sortable_uint_keys(keys)
        assert np.all(np.diff(enc.astype(object)) > 0)

    def test_uint_encoding_preserves_order_f8(self):
        keys = np.array([-np.inf, -1e300, -1.5, -0.0, 0.0, 1.5, 1e300, np.inf])
        enc = sortable_uint_keys(np.sort(keys))
        assert np.all(np.diff(enc.astype(object)) >= 0)

    def test_unsupported_dtype(self):
        with pytest.raises(ConfigError):
            sortable_uint_keys(np.array(["a"], dtype="U1"))

    def test_digit_bits_validated(self):
        def prog(comm):
            return distributed_radix_sort(
                comm, FMT.make(np.arange(8, dtype=np.uint64)), FMT, digit_bits=0
            )

        with pytest.raises(SpmdError):
            run_spmd(2, prog, timeout=5)

    def test_wide_digit_bits(self):
        recs = generate("uniform", FMT, 4 * 32, seed=8)
        got = sort_distributed(distributed_radix_sort, recs, 4, digit_bits=11)
        assert np.array_equal(got["key"], np.sort(recs["key"]))


class TestBitonicSpecifics:
    def test_exchange_count_formula(self):
        assert bitonic_exchange_count(2) == 1
        assert bitonic_exchange_count(4) == 3
        assert bitonic_exchange_count(16) == 10

    def test_bitonic_communication_exceeds_columnsort(self):
        """§4: bitonic moves more data once P grows — count real bytes."""
        p = 8
        recs = generate("uniform", FMT, p * 2 * p * p, seed=9)
        n_local = len(recs) // p

        def run_and_measure(fn):
            def prog(comm):
                local = recs[comm.rank * n_local : (comm.rank + 1) * n_local]
                fn(comm, local, FMT)
                return comm.stats.snapshot()["network_bytes"]

            return sum(run_spmd(p, prog).returns)

        assert run_and_measure(distributed_bitonic_sort) > run_and_measure(
            distributed_columnsort
        )


class TestSampleSpecifics:
    def test_skewed_input_still_sorts(self):
        recs = generate("zipf", FMT, 4 * 128, seed=10)
        got = sort_distributed(distributed_sample_sort, recs, 4)
        assert np.array_equal(got["key"], np.sort(recs["key"]))

    def test_oversample_validated(self):
        def prog(comm):
            return distributed_sample_sort(
                comm, FMT.make(np.arange(8, dtype=np.uint64)), FMT, oversample=0
            )

        with pytest.raises(SpmdError):
            run_spmd(2, prog, timeout=5)

    def test_all_equal_keys_degenerate_splitters(self):
        recs = generate("all-equal", FMT, 4 * 64, seed=11)
        got = sort_distributed(distributed_sample_sort, recs, 4)
        assert np.array_equal(np.sort(got["uid"]), np.sort(recs["uid"]))
