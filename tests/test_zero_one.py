"""The 0-1 principle checker: exhaustive correctness and the empirical
height boundary."""

import numpy as np
import pytest

from repro.columnsort.basic import columnsort
from repro.columnsort.subblock import subblock_columnsort
from repro.columnsort.zero_one import (
    batch_from_counts,
    count_vectors,
    empirical_min_height,
    exhaustive_check,
    run_batch,
    sorted_mask,
)
from repro.errors import ConfigError, DimensionError
from repro.matrix.layout import to_columns


class TestMachinery:
    def test_count_vectors_enumerate_all(self):
        got = np.concatenate(list(count_vectors(2, 3, chunk=5)))
        assert got.shape == (27, 3)
        assert len({tuple(row) for row in got}) == 27
        assert got.min() == 0 and got.max() == 2

    def test_batch_from_counts(self):
        counts = np.array([[0, 2], [1, 0]])
        batch = batch_from_counts(counts, 2)
        assert batch.shape == (2, 2, 2)
        assert batch[0].tolist() == [[1, 0], [1, 0]]  # 0 zeros | 2 zeros
        assert batch[1].tolist() == [[0, 1], [1, 1]]

    def test_sorted_mask(self):
        batch = np.array(
            [[[0, 1], [0, 1]], [[1, 0], [1, 1]]], dtype=np.int8
        )
        assert sorted_mask(batch).tolist() == [True, False]

    @pytest.mark.parametrize("variant,fn", [
        ("basic", columnsort), ("subblock", subblock_columnsort),
    ])
    def test_run_batch_matches_reference_implementation(self, variant, fn, rng):
        """The vectorized batch runner and the record-level algorithms
        are the same computation."""
        r, s = (32, 4)
        counts = rng.integers(0, r + 1, size=(40, s))
        batch = batch_from_counts(counts, r)
        out = run_batch(batch.copy(), variant)
        for b in range(len(batch)):
            flat = batch[b].flatten(order="F").astype(np.int64)
            ref = fn(to_columns(flat, r, s), check=False)
            assert np.array_equal(out[b].astype(np.int64), ref), b

    def test_validation(self):
        with pytest.raises(DimensionError):
            exhaustive_check(9, 3)  # odd r
        with pytest.raises(DimensionError):
            exhaustive_check(10, 3)  # s ∤ r... (10 % 3 != 0)
        with pytest.raises(DimensionError):
            exhaustive_check(16, 8, "subblock")  # s not a power of 4
        with pytest.raises(ConfigError):
            run_batch(np.zeros((1, 4, 2), dtype=np.int8), "bogo")


class TestExhaustiveCorrectness:
    def test_basic_verified_at_its_bound(self):
        """All 33^4 ≈ 1.19M distinct inputs sort at r = 2s² (s=4) —
        proof-strength verification via the 0-1 principle."""
        assert exhaustive_check(32, 4, "basic") is None

    def test_subblock_verified_below_basic_bound(self):
        """Subblock columnsort exhaustively verified at r = 16 < 2s² —
        where basic columnsort provably fails (next test)."""
        assert exhaustive_check(16, 4, "subblock") is None

    def test_basic_counterexample_below_boundary(self):
        """A concrete all-inputs refutation: at r = 16, s = 4 some 0-1
        input defeats 8-step columnsort — the height restriction is
        load-bearing."""
        counterexample = exhaustive_check(16, 4, "basic")
        assert counterexample is not None
        # Replay it through the reference implementation.
        batch = batch_from_counts(counterexample.reshape(1, -1), 16)
        assert not sorted_mask(run_batch(batch, "basic"))[0]

    def test_counterexample_replays_on_record_sort(self):
        counterexample = exhaustive_check(16, 4, "basic")
        flat = (
            batch_from_counts(counterexample.reshape(1, -1), 16)[0]
            .flatten(order="F")
            .astype(np.int64)
        )
        from repro.matrix.layout import is_sorted_column_major

        out = columnsort(to_columns(flat, 16, 4), check=False)
        assert not is_sorted_column_major(out)


class TestEmpiricalBoundary:
    def test_s2(self):
        # Leighton exact: 2(s−1)² = 2; the paper's simplified bound: 8.
        assert empirical_min_height(2, "basic") == 2

    def test_s4_basic(self):
        """Empirical minimum 20 — the smallest legal height ≥ Leighton's
        exact 2(s−1)² = 18, well under the paper's simplified 2s² = 32."""
        assert empirical_min_height(4, "basic") == 20

    def test_s4_subblock(self):
        """Empirical minimum 12 — under basic's 20 (the relaxation is
        real) and far under the sufficient bound 4·s^(3/2) = 32."""
        assert empirical_min_height(4, "subblock") == 12

    def test_boundary_ordering(self):
        assert empirical_min_height(4, "subblock") < empirical_min_height(4, "basic")
