"""Bit utilities behind the Figure 1 permutation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DimensionError
from repro.matrix.bits import (
    deposit_bits,
    extract_bits,
    ilog2,
    interleave_fields,
    is_power_of_four,
    is_power_of_two,
    sqrt_pow4,
)


class TestPredicates:
    def test_powers_of_two(self):
        assert [n for n in range(1, 65) if is_power_of_two(n)] == [
            1, 2, 4, 8, 16, 32, 64,
        ]
        assert not is_power_of_two(0)
        assert not is_power_of_two(-4)

    def test_powers_of_four(self):
        assert [n for n in range(1, 300) if is_power_of_four(n)] == [1, 4, 16, 64, 256]

    def test_ilog2(self):
        for a in range(20):
            assert ilog2(1 << a) == a
        with pytest.raises(DimensionError):
            ilog2(6)
        with pytest.raises(DimensionError):
            ilog2(0)

    def test_sqrt_pow4(self):
        assert sqrt_pow4(1) == 1
        assert sqrt_pow4(4) == 2
        assert sqrt_pow4(256) == 16
        with pytest.raises(DimensionError):
            sqrt_pow4(8)


class TestBitFields:
    def test_extract(self):
        assert extract_bits(0b101100, 2, 3) == 0b011
        assert extract_bits(0b101100, 0, 2) == 0
        assert extract_bits(0xFF, 4, 4) == 0xF

    def test_extract_zero_width(self):
        assert extract_bits(123, 3, 0) == 0
        arr = extract_bits(np.array([5, 6]), 1, 0)
        assert np.all(arr == 0)

    def test_extract_vectorized(self):
        vals = np.array([0b1010, 0b0101])
        assert list(extract_bits(vals, 1, 2)) == [0b01, 0b10]

    def test_deposit(self):
        assert deposit_bits(0b11, 2) == 0b1100

    def test_interleave(self):
        assert interleave_fields((0b10, 2), (0b1, 1)) == 0b101
        assert interleave_fields((1, 1), (0, 2), (3, 2)) == 0b10011

    @given(
        st.integers(min_value=0, max_value=2**30 - 1),
        st.integers(min_value=0, max_value=24),
        st.integers(min_value=1, max_value=6),
    )
    def test_extract_deposit_roundtrip(self, value, lo, width):
        field = extract_bits(value, lo, width)
        assert 0 <= field < (1 << width)
        # Depositing back and re-extracting is the identity on the field.
        assert extract_bits(deposit_bits(field, lo), lo, width) == field

    @given(st.integers(min_value=0, max_value=2**20 - 1))
    def test_full_decomposition(self, value):
        """Splitting into 4 fields of 5 bits and re-interleaving is the
        identity — the exact structure of the Figure 1 permutation."""
        fields = [(extract_bits(value, lo, 5), 5) for lo in (15, 10, 5, 0)]
        assert interleave_fields(*fields) == value
