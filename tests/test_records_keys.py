"""Key dtypes and sentinels."""

import numpy as np
import pytest

from repro.records.keys import KEY_DTYPES, key_info, max_key, min_key


class TestKeyInfo:
    @pytest.mark.parametrize("name", sorted(KEY_DTYPES))
    def test_resolution_by_name(self, name):
        info = key_info(name)
        assert info.name == name
        assert info.dtype == KEY_DTYPES[name]
        assert info.itemsize == KEY_DTYPES[name].itemsize

    def test_resolution_by_dtype(self):
        info = key_info(np.dtype("<u8"))
        assert info.name == "u8"

    def test_unknown_name(self):
        with pytest.raises(TypeError, match="unknown key dtype"):
            key_info("u2")

    def test_unsupported_dtype(self):
        with pytest.raises(TypeError):
            key_info(np.dtype("c16"))


class TestSentinels:
    def test_integer_extremes(self):
        assert min_key("u8") == 0
        assert max_key("u8") == np.iinfo(np.uint64).max
        assert min_key("i8") == np.iinfo(np.int64).min
        assert max_key("i4") == np.iinfo(np.int32).max

    def test_float_infinities(self):
        assert min_key("f8") == -np.inf
        assert max_key("f8") == np.inf

    @pytest.mark.parametrize("name", sorted(KEY_DTYPES))
    def test_sentinels_bracket_all_values(self, name):
        """Every drawable key lies in [min_key, max_key] — the property
        the step-6/8 padding relies on."""
        info = key_info(name)
        rng = np.random.default_rng(0)
        if info.dtype.kind == "f":
            vals = rng.standard_normal(100) * 1e30
        else:
            ii = np.iinfo(info.dtype)
            vals = rng.integers(ii.min, ii.max, size=100, endpoint=True,
                                dtype=info.dtype)
        assert np.all(vals >= info.min_value)
        assert np.all(vals <= info.max_value)
