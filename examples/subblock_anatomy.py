#!/usr/bin/env python3
"""Anatomy of subblock columnsort: watch the ten steps do their work.

Runs the in-core 10-step algorithm on a matrix that is *illegal* for
basic columnsort (r = 4·s^(3/2) = 256 < 2s² = 512), printing what each
step establishes — including the §3 structural facts: the subblock
property of step 3.1 and the sorted runs of length r/√s it leaves.

Run:  python examples/subblock_anatomy.py
"""

import numpy as np

from repro.columnsort import columnsort, subblock_columnsort_steps
from repro.columnsort.checks import (
    count_sorted_runs,
    has_subblock_property,
    min_run_length,
)
from repro.matrix.layout import (
    is_sorted_column_major,
    is_sorted_columnwise,
    to_columns,
)
from repro.matrix.permutations import subblock_target

r, s = 256, 16  # √s = 4; below basic columnsort's bound of 2s² = 512
rng = np.random.default_rng(7)
flat = rng.integers(0, 50, size=r * s)  # tiny key alphabet: adversarial
matrix = to_columns(flat, r, s)

print(f"matrix: {r}×{s} (r = 4·s^(3/2) exactly; basic columnsort needs "
      f"r ≥ 2s² = {2 * s * s})\n")

# Basic columnsort genuinely cannot promise this matrix (run unchecked):
unsafe = columnsort(matrix, check=False)
print(f"8-step columnsort below its bound → sorted? "
      f"{is_sorted_column_major(unsafe)} (not guaranteed)\n")

print("the 10 steps of subblock columnsort:")
for label, state in subblock_columnsort_steps(matrix):
    notes = []
    if label.endswith("sort") and ":" in label:
        notes.append(f"columns sorted: {is_sorted_columnwise(state)}")
    if label == "3.1:subblock-permutation":
        runs = [count_sorted_runs(state[:, j]) for j in range(s)]
        notes.append(
            f"runs/column ≤ √s={int(s**0.5)}: max observed {max(runs)}"
        )
        notes.append(
            f"shortest run ≥ r/√s={r // int(s**0.5)}: observed "
            f"{min(min_run_length(state[:, j]) for j in range(s))}"
        )
    if label == "6:shift-down":
        notes.append(f"shape now {state.shape} (±∞ padding column added)")
    if label == "8:shift-up":
        notes.append(f"fully sorted: {is_sorted_column_major(state)}")
    print(f"  step {label:26s} {'; '.join(notes)}")

print(f"\nsubblock property of the step-3.1 permutation "
      f"(every √s×√s subblock → all {s} columns): "
      f"{has_subblock_property(subblock_target, r, s)}")
assert is_sorted_column_major(state)
assert np.array_equal(np.sort(flat), state.flatten(order='F'))
print("final matrix verified: sorted in column-major order, same multiset")
