#!/usr/bin/env python3
"""The adjustable height interpretation (§6 future work), live.

g-columnsort interpolates between threaded columnsort (g=1) and
M-columnsort (g=P): columns are r = g·M/P records tall, owned by
groups of g processors, and the sort stages are distributed sorts over
group sub-communicators. This script sweeps g on a live cluster and
shows the §6 trade — the reachable problem size grows with g, and so
does sort-stage communication — then lets the built-in policy pick the
smallest feasible g for a problem threaded columnsort cannot configure.

Run:  python examples/adjustable_height.py
"""

from repro import ClusterConfig, RecordFormat, generate
from repro.bounds.restrictions import max_pow2_n
from repro.oocs.gcolumnsort import g_bound, smallest_group_size, sort_with_group_size

fmt = RecordFormat("u8", 64)
P, buffer_records = 4, 512
cluster = ClusterConfig(p=P, mem_per_proc=buffer_records)

print(f"cluster: P={P}, buffer={buffer_records} records "
      f"({buffer_records * 64 // 1024} KiB)\n")

print("the §6 trade, measured on live runs (N = 8192 so every g is legal):")
records = generate("uniform", fmt, 8192, seed=1)
print(f"{'g':>3} {'r = g·M/P':>10} {'bound (records)':>16} "
      f"{'network bytes':>14}  role")
roles = {1: "= threaded columnsort", 2: "intermediate", 4: "= M-columnsort"}
for g in (1, 2, 4):
    result = sort_with_group_size(records, cluster, fmt, buffer_records,
                                  group_size=g)
    print(f"{g:>3} {g * buffer_records:>10} "
          f"{max_pow2_n(g_bound(buffer_records, g)):>16,} "
          f"{result.comm_total['network_bytes']:>14,}  {roles[g]}")

n_big = 32768  # beyond g=1's bound of 8192 and g=2's 16384
print(f"\nnow N = {n_big:,} — too large for g ∈ {{1, 2}} at this buffer:")
g_pick = smallest_group_size(n_big, P, buffer_records)
print(f"policy picks the smallest feasible group size: g = {g_pick}")
big = generate("uniform", fmt, n_big, seed=2)
result = sort_with_group_size(big, cluster, fmt, buffer_records)  # auto
print(f"ran {result.algorithm}: {result.passes} passes, verified; "
      f"network {result.comm_total['network_bytes']:,} B")
