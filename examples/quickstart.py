#!/usr/bin/env python3
"""Quickstart: sort records out of core with all four algorithms.

Builds a simulated 4-processor cluster (one virtual disk per processor,
backed by temp files), generates a million bytes' worth of 64-byte
records, and runs each columnsort variant. Every run is verified: the
PDM-ordered output must be a sorted permutation of the input with
intact keys.

Run:  python examples/quickstart.py
"""

from repro import ClusterConfig, RecordFormat, generate, sort_out_of_core

fmt = RecordFormat("u8", 64)
cluster = ClusterConfig(p=4, mem_per_proc=2**12)  # 4096 records of RAM/proc

print(f"cluster: P={cluster.p}, D={cluster.virtual_disks}, "
      f"M/P={cluster.mem_per_proc} records\n")

# Per-algorithm shapes. `buffer_records` is the paper's r: the column
# height for threaded/subblock, the per-processor column portion for
# m/hybrid. Note subblock's buffer is HALF of threaded's for the same
# column count — that is bound (2) at work.
runs = {
    "threaded": (generate("uniform", fmt, 8192, seed=1), 512),
    "subblock": (generate("zipf", fmt, 4096, seed=2), 256),
    "m": (generate("duplicates", fmt, 16384, seed=3), 256),
    "hybrid": (generate("reverse", fmt, 16384, seed=4), 256),
}

for algorithm, (records, buffer_records) in runs.items():
    result = sort_out_of_core(
        algorithm, records, cluster, fmt, buffer_records=buffer_records
    )  # verify=True by default — raises VerificationError on any corruption
    io = result.io
    print(f"{algorithm:9s} N={len(records):6d}  passes={result.passes}  "
          f"disk I/O={io['bytes_read'] + io['bytes_written']:>10,} B  "
          f"network={result.comm_total['network_bytes']:>9,} B")

print("\nall outputs verified: sorted, PDM-striped, true permutations")
