#!/usr/bin/env python3
"""Regenerate the paper's Figure 2 and check every §5 claim.

The discrete-event model simulates the pipelined passes at the paper's
full experimental scale (4-32 GB, P ∈ {4, 8, 16}, buffers 2^24/2^25 B)
on the calibrated BEOWULF_2003 hardware profile. No data moves — the
algorithms' traces are oblivious to key values, so timing is a pure
function of the configuration.

Run:  python examples/figure2.py
"""

from repro.experiments.figure2 import (
    figure2_claims,
    figure2_series,
    render_figure2,
)

series = figure2_series()
print(render_figure2(series))

print("\nClaims from the paper's §5, checked against the regenerated data:")
for claim, ok in figure2_claims(series).items():
    print(f"  [{'ok' if ok else 'FAIL'}] {claim}")

print("""
Reading the figure like the paper does:
 * threaded columnsort hugs the 3-pass baseline (it is I/O-bound) but
   exists only at the small end — restriction (1);
 * subblock columnsort hugs the 4-pass baseline (one extra pass, still
   I/O-bound); its two buffer lines cover DISJOINT sizes, factor-of-4
   apart, because s must be a power of 4;
 * M-columnsort runs at every size, above the 3-pass baseline (its
   distributed sort stage is not free) yet always at or below subblock.
""")
