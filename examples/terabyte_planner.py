#!/usr/bin/env python3
"""Capacity planner: which columnsort variant can sort your dataset?

The paper's bounds, turned into a tool. Give it a cluster shape and a
dataset, and it reports each algorithm's maximum problem size, whether
your dataset fits, and the M-vs-subblock crossover for your processor
count — including the paper's own worked example (§1): 16 processors
with 2^19 records of memory each can sort a full terabyte under
M-columnsort.

Run:  python examples/terabyte_planner.py [total_gb] [p] [log2_mem_per_proc]
"""

import sys

from repro.bounds import (
    crossover_memory,
    improvement_factor,
    m_beats_subblock,
    max_pow2_n,
    restriction_table,
    terabyte_config,
)

total_gb = int(sys.argv[1]) if len(sys.argv) > 1 else 1024  # 1 TB default
p = int(sys.argv[2]) if len(sys.argv) > 2 else 16
log2_mem = int(sys.argv[3]) if len(sys.argv) > 3 else 19
record_size = 64

mem_per_proc = 1 << log2_mem
n_needed = total_gb * 2**30 // record_size
bounds = restriction_table(mem_per_proc, p)

print(f"cluster: P={p}, M/P=2^{log2_mem} records "
      f"({mem_per_proc * record_size / 2**20:.0f} MiB at {record_size} B/record)")
print(f"dataset: {total_gb} GB = {n_needed:,} records\n")

print(f"{'algorithm':<14}{'bound (records)':>18}{'max power-of-2 N':>18}"
      f"{'fits?':>7}{'passes':>8}")
passes = {"threaded": 3, "subblock": 4, "m": 3, "hybrid": 4}
for algorithm, bound in bounds.items():
    fits = "yes" if n_needed <= max_pow2_n(bound) else "no"
    print(f"{algorithm:<14}{bound:>18,}{max_pow2_n(bound):>18,}"
          f"{fits:>7}{passes[algorithm]:>8}")

print(f"\nsubblock extends threaded by ×{improvement_factor(mem_per_proc):.2f} "
      f"(>2 whenever M/P ≥ 2^12 — paper §1)")

m_total = mem_per_proc * p
crossover = crossover_memory(p)
winner = "M-columnsort" if m_beats_subblock(m_total, p) else "subblock columnsort"
print(f"crossover at P={p}: M {'<' if m_total < crossover else '≥'} 32·P^10 "
      f"= 2^{crossover.bit_length() - 1} records → {winner} reaches further")

paper = terabyte_config()
print(f"\npaper's worked example: P={paper.p}, M/P=2^19, 64-byte records → "
      f"up to {paper.max_bytes / 2**40:.0f} TB under M-columnsort")
