#!/usr/bin/env python3
"""From a real run to a wall-clock prediction.

Runs M-columnsort functionally on the simulated cluster, prints the
per-pass I/O and communication it actually performed, then feeds the
run's own structural trace to the discrete-event pipeline model under
two hardware profiles: the paper's 2003 Beowulf and a modern NVMe
machine. The functional run and the Figure 2 numbers are connected by
exactly this trace — the test suite asserts the functional and analytic
traces are identical.

Run:  python examples/cluster_trace.py
"""

from repro import ClusterConfig, RecordFormat, generate, sort_out_of_core
from repro.simulate.hardware import BEOWULF_2003, MODERN_NVME
from repro.simulate.predict import predict_run

fmt = RecordFormat("u8", 64)
cluster = ClusterConfig(p=4, mem_per_proc=2**10)
records = generate("uniform", fmt, 4 * 256 * 16, seed=1)  # 16 columns of M=1024

result = sort_out_of_core("m", records, cluster, fmt, buffer_records=256)

print(f"M-columnsort, N={len(records):,} records on P={cluster.p} "
      f"(r = M = {cluster.p * 256}, s = 16)\n")

print("what the run actually did, per pass (rank 0's view):")
for k, (io, comm) in enumerate(zip(result.io_per_pass, result.comm_per_pass)):
    print(f"  pass {k + 1}: read {io['bytes_read']:>9,} B  "
          f"wrote {io['bytes_written']:>9,} B  "
          f"sent {comm['network_bytes']:>9,} B over the network")

print("\nfeeding the run's own trace to the pipeline DES:")
for hw in (BEOWULF_2003, MODERN_NVME):
    timing = predict_run(result.trace, hw)
    per_pass = "  ".join(
        f"p{k + 1}={t.makespan * 1000:.1f}ms" for k, t in enumerate(timing.per_pass)
    )
    print(f"  {hw.name:13s} total {timing.total_seconds * 1000:8.1f} ms   {per_pass}")

print("\nbottleneck threads per pass (BEOWULF_2003):")
for k, t in enumerate(predict_run(result.trace, BEOWULF_2003).per_pass):
    print(f"  pass {k + 1}: {t.bottleneck_thread:9s} "
          f"({t.utilization(t.bottleneck_thread) * 100:.0f}% busy, "
          f"{t.rounds} rounds, pipeline depth {t.max_inflight})")
