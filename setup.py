"""Setup shim.

This environment has no network access and no ``wheel`` package, so PEP
517/660 builds (which need ``bdist_wheel``) cannot run. This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` take the legacy
``setup.py develop`` path using only the locally installed setuptools.
"""

from setuptools import setup

setup()
